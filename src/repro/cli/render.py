"""ASCII renderers for NFFGs, mappings and deployment reports.

The paper demos a GUI; examples in this repo print these renderings
instead, which keeps the scenarios scriptable and diffable.
"""

from __future__ import annotations

from repro.mapping.base import MappingResult
from repro.nffg.graph import NFFG
from repro.nffg.model import NodeInfra
from repro.orchestration.report import DeployReport


def render_nffg(nffg: NFFG, *, show_flowrules: bool = False) -> str:
    """Multi-line summary of an NFFG."""
    lines = [f"NFFG {nffg.id!r} ({nffg.name})"]
    if nffg.saps:
        lines.append("  SAPs: " + ", ".join(sap.id for sap in nffg.saps))
    for infra in nffg.infras:
        free = infra.resources
        hosted = [nf.id for nf in nffg.nfs_on(infra.id)]
        lines.append(
            f"  [{infra.infra_type.value}] {infra.id} "
            f"({infra.domain.value}) cpu={free.cpu:g} mem={free.mem:g} "
            + (f"NFs: {', '.join(hosted)}" if hosted else ""))
        if show_flowrules:
            for port, rule in infra.iter_flowrules():
                lines.append(f"      {port.id}: {rule.match} -> {rule.action}"
                             + (f" ({rule.bandwidth:g} Mbps)"
                                if rule.bandwidth else ""))
    for hop in nffg.sg_hops:
        lines.append(f"  hop {hop.id}: {hop.src_node}.{hop.src_port} -> "
                     f"{hop.dst_node}.{hop.dst_port}"
                     + (f" bw={hop.bandwidth:g}" if hop.bandwidth else "")
                     + (f" fc={hop.flowclass}" if hop.flowclass else ""))
    for req in nffg.requirements:
        if req.max_delay != float("inf"):
            lines.append(f"  req {req.id}: {req.src_node}->{req.dst_node} "
                         f"delay<={req.max_delay:g} ms")
    for link in nffg.links:
        if link.id.endswith("-back"):
            continue
        src = nffg.node(link.src_node)
        dst = nffg.node(link.dst_node)
        if isinstance(src, NodeInfra) and isinstance(dst, NodeInfra):
            lines.append(f"  link {link.src_node} <-> {link.dst_node} "
                         f"{link.bandwidth:g} Mbps / {link.delay:g} ms")
    return "\n".join(lines)


def render_mapping(result: MappingResult) -> str:
    if not result.success:
        return f"mapping FAILED: {result.failure_reason}"
    lines = ["mapping OK:"]
    for nf_id, infra_id in sorted(result.nf_placement.items()):
        lines.append(f"  {nf_id} -> {infra_id}")
    for hop_id, route in sorted(result.hop_routes.items()):
        lines.append(f"  {hop_id}: " + " -> ".join(route.infra_path)
                     + f"  (delay {route.delay:.2f} ms)")
    if result.decompositions:
        for nf_id, rule in sorted(result.decompositions.items()):
            lines.append(f"  decomposition: {nf_id} via {rule}")
    via = f" embedder={result.embedder}" if result.embedder else ""
    lines.append(f"  cost={result.cost:.2f} examined={result.nodes_examined} "
                 f"backtracks={result.backtracks}{via}")
    return "\n".join(lines)


def render_dot(nffg: NFFG, *, title: str = "") -> str:
    """Render an NFFG as Graphviz DOT (for docs and offline viewing).

    SAPs are ellipses, BiS-BiS nodes boxes (grouped per domain), NFs
    rounded boxes attached to their hosts; SG hops are dashed arrows.
    """
    lines = [f'digraph "{title or nffg.id}" {{',
             "  rankdir=LR;",
             '  node [fontname="Helvetica"];']
    for sap in nffg.saps:
        lines.append(f'  "{sap.id}" [shape=ellipse, style=filled, '
                     'fillcolor="#dceefb"];')
    for infra in nffg.infras:
        label = (f"{infra.id}\\n{infra.domain.value}\\n"
                 f"cpu={infra.resources.cpu:g}")
        lines.append(f'  "{infra.id}" [shape=box, style=filled, '
                     f'fillcolor="#e8f5e9", label="{label}"];')
    for nf in nffg.nfs:
        lines.append(f'  "{nf.id}" [shape=box, style="rounded,filled", '
                     f'fillcolor="#fff3e0", '
                     f'label="{nf.id}\\n({nf.functional_type})"];')
    seen_pairs = set()
    for link in nffg.links:
        pair = frozenset((link.src_node, link.dst_node))
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        lines.append(f'  "{link.src_node}" -> "{link.dst_node}" '
                     f'[dir=both, label="{link.bandwidth:g}M/'
                     f'{link.delay:g}ms"];')
    for edge in nffg.dynamic_links:
        pair = frozenset((edge.src_node, edge.dst_node))
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        lines.append(f'  "{edge.src_node}" -> "{edge.dst_node}" '
                     '[dir=both, style=dotted];')
    for hop in nffg.sg_hops:
        label = hop.flowclass or ""
        lines.append(f'  "{hop.src_node}" -> "{hop.dst_node}" '
                     f'[style=dashed, color="#c62828", label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def render_deploy_report(report: DeployReport) -> str:
    lines = [report.summary_line()]
    stages = {stage: seconds
              for stage, seconds in report.stage_timings().items()
              if seconds > 0.0}
    if stages:
        lines.append("  stages: " + "  ".join(
            f"{stage} {seconds * 1e3:.1f} ms"
            for stage, seconds in stages.items()))
    if report.mapping is not None and report.mapping.success:
        mapping = report.mapping
        lines.append(
            f"  mapping: {mapping.embedder or 'custom'} "
            f"cost={mapping.cost:.2f} "
            f"examined={mapping.nodes_examined} nodes "
            f"backtracks={mapping.backtracks}")
    for adapter_report in report.adapters:
        lines.append("  " + _adapter_line(adapter_report))
    if report.rollback:
        lines.append("  rollback:")
        for adapter_report in report.rollback:
            lines.append("    " + _adapter_line(adapter_report))
    return "\n".join(lines)


def _adapter_line(adapter_report) -> str:
    if adapter_report.skipped:
        return (f"{adapter_report.domain}: SKIPPED (circuit open) — "
                f"{adapter_report.error}")
    status = ("ok" if adapter_report.success
              else f"FAILED: {adapter_report.error}")
    retries = (f", {adapter_report.attempts} attempts "
               f"(+{adapter_report.backoff_s * 1e3:.0f} ms backoff)"
               if adapter_report.attempts > 1 else "")
    if adapter_report.messages or adapter_report.bytes:
        mode = "delta" if adapter_report.delta else "full"
        push = (f", push {mode} {adapter_report.messages} msgs / "
                f"{adapter_report.bytes} B")
    elif adapter_report.delta:
        push = ", push delta noop"
    else:
        push = ""
    return (f"{adapter_report.domain}: {status} "
            f"({adapter_report.nfs_requested} NFs, "
            f"{adapter_report.flowrules_requested} rules, "
            f"{adapter_report.control_messages} msgs / "
            f"{adapter_report.control_bytes} B{push}{retries})")
