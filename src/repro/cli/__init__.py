"""Text rendering and scenario running (the demo GUI's stand-in)."""

from repro.cli.render import (
    render_deploy_report,
    render_dot,
    render_mapping,
    render_nffg,
)
from repro.cli.scenario import ScenarioRunner

__all__ = [
    "render_nffg",
    "render_deploy_report",
    "render_dot",
    "render_mapping",
    "ScenarioRunner",
]
