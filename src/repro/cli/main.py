"""Command-line entry point: ``python -m repro`` (or the ``repro``
console script).

Subcommands:

- ``demo``       — deploy the reference chain over the Fig. 1 testbed,
                   drive probe traffic, print the full report;
- ``topology``   — print the merged global view (ASCII or DOT);
- ``lint``       — static-analyze NFFG JSON files (exit 0 clean,
                   1 findings at/above the fail level, 2 parse error);
- ``check``      — the concurrency gate: code-scope CC rules over this
                   repo's own source (``--self`` or explicit ``.py``
                   paths), NFFG graph lint for ``.json`` paths, and a
                   runtime sanitizer smoke (same exit contract);
- ``scale``      — run one elastic load/idle cycle;
- ``perf``       — deploy a few services and print the push-pipeline
                   counters (delta vs full pushes, dispatcher fan-out);
- ``trace``      — run traced deploys, print the span tree and
                   optionally export Chrome trace_event JSON;
- ``metrics``    — deploy a few services and print histogram/counter
                   metrics in Prometheus text-exposition format;
- ``events``     — replay (or follow) the structured event log as
                   JSONL, optionally under an injected fault schedule;
- ``recover``    — crash the reference control plane between two
                   journal appends (seeded or ``--crash-at``), then
                   rebuild a successor from the write-ahead intent
                   journal and reconcile the domains (``--dry-run``
                   prints the diff without pushing);
- ``catalog``    — list deployable NF types;
- ``experiments``— list the experiment harnesses and how to run them.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.cli.render import render_deploy_report
    from repro.cli.scenario import ScenarioRunner
    from repro.service import ServiceRequestBuilder
    from repro.topo import build_reference_multidomain

    testbed = build_reference_multidomain()
    request = (ServiceRequestBuilder("demo")
               .sap("sap1").sap("sap2")
               .nf("demo-fw", "firewall").nf("demo-nat", "nat")
               .chain("sap1", "demo-fw", "demo-nat", "sap2",
                      bandwidth=args.bandwidth)
               .delay_requirement("sap1", "sap2", max_delay=args.max_delay)
               .build())
    runner = ScenarioRunner(testbed)
    report, traffic = runner.deploy_and_probe(request, "sap1", "sap2",
                                              count=args.packets)
    print(render_deploy_report(report))
    if not report.success:
        return 1
    print(f"\nprobe: {traffic.delivered}/{traffic.sent} delivered, "
          f"mean latency {traffic.mean_latency_ms:.2f} vms")
    print("path: " + " -> ".join(traffic.traces[0]))
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    from repro.cli.render import render_dot, render_nffg
    from repro.topo import build_reference_multidomain

    testbed = build_reference_multidomain(
        emu_switches=args.emu_switches, sdn_switches=args.sdn_switches)
    view = testbed.escape.resource_view()
    if args.format == "dot":
        print(render_dot(view, title="global-view"))
    else:
        print(render_nffg(view))
    return 0


def _cmd_scale(args: argparse.Namespace) -> int:
    from repro.elastic import ElasticityController, ScalingRule
    from repro.netem.packet import tcp_packet
    from repro.service import ServiceRequestBuilder
    from repro.topo import build_emulated_testbed

    def version(level: int):
        builder = (ServiceRequestBuilder("scale")
                   .sap("sap1").sap("sap2"))
        names = []
        for index in range(level):
            name = f"scale-w{index}"
            builder.nf(name, "forwarder")
            names.append(name)
        builder.chain("sap1", *names, "sap2", bandwidth=1.0)
        return builder.build().sg

    testbed = build_emulated_testbed(switches=2)
    testbed.escape.deploy(version(1))
    controller = ElasticityController(testbed.escape)
    controller.manage("scale",
                      ScalingRule(metric_hop="scale-hop1",
                                  scale_out_pps=args.threshold,
                                  scale_in_pps=args.threshold / 10,
                                  max_level=args.max_level),
                      version)
    src, dst = testbed.host("sap1"), testbed.host("sap2")
    print(f"level {controller.managed_level('scale')} — blasting "
          f"{args.packets} packets...")
    src.send_burst([tcp_packet(src.ip, dst.ip, tp_src=42000 + i)
                    for i in range(args.packets)], interval=1.0)
    testbed.run()
    for event in controller.poll():
        print(f"  {event.action.value}: level {event.level_before} -> "
              f"{event.level_after} at {event.observed_pps:.0f} pps")
    testbed.network.simulator.schedule(30_000.0, lambda: None)
    testbed.run()
    for event in controller.poll():
        print(f"  {event.action.value}: level {event.level_before} -> "
              f"{event.level_after} at {event.observed_pps:.1f} pps")
    print(f"final level {controller.managed_level('scale')}")
    return 0


#: ``repro lint`` / ``repro check`` exit codes (conventional linter
#: contract): 0 = clean, 1 = findings at/above the fail level,
#: 2 = input could not be analyzed (parse error, missing file)
LINT_CLEAN = 0
LINT_FINDINGS = 1
LINT_PARSE_ERROR = 2


def _render(diagnostics, fmt: str, source: str) -> str:
    from repro.lint import render_json, render_sarif, render_text

    if fmt == "json":
        return render_json(diagnostics, source=source)
    if fmt == "sarif":
        return render_sarif(diagnostics, source=source)
    return render_text(diagnostics, source=source)


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.lint import Severity, lint_nffg, render_rule_catalog
    from repro.mapping.decomposition import default_decomposition_library
    from repro.nffg.graph import NFFGError
    from repro.nffg.serialize import nffg_from_dict

    if args.list_rules:
        print(render_rule_catalog())
        return LINT_CLEAN

    if not args.files:
        print("repro lint: no input files (see --list-rules)",
              file=sys.stderr)
        return LINT_PARSE_ERROR

    threshold = Severity.from_name(args.fail_level)
    library = default_decomposition_library()
    worst = LINT_CLEAN
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            nffg = nffg_from_dict(data)
        except (OSError, ValueError, KeyError, NFFGError) as exc:
            print(f"{path}: cannot load NFFG: {exc}", file=sys.stderr)
            return LINT_PARSE_ERROR
        diagnostics = lint_nffg(nffg, decomposition_library=library)
        print(_render(diagnostics, args.format, path))
        if diagnostics.at_least(threshold):
            worst = LINT_FINDINGS
    return worst


def _sanitizer_smoke():
    """Exercise the instrumented control plane under a fresh sanitizer
    state: concurrent deploys, a teardown and a reconcile drive every
    tracked lock, then the state's report is the verdict."""
    from repro import sanitize
    from repro.service import ServiceRequestBuilder

    previous = sanitize.disable()
    state = sanitize.enable(fresh=True)
    try:
        # built *after* enable() so every control-plane lock is tracked
        from repro.topo import build_reference_multidomain

        testbed = build_reference_multidomain()
        for index in range(2):
            request = (ServiceRequestBuilder(f"check{index}")
                       .sap("sap1").sap("sap2")
                       .nf(f"check{index}-fw", "firewall")
                       .chain("sap1", f"check{index}-fw", "sap2",
                              bandwidth=1.0).build())
            report = testbed.service_layer.submit(request)
            if not report.success:
                raise RuntimeError(f"smoke deploy failed: {report.error}")
        testbed.escape.teardown("check0")
        testbed.escape.cal.reconcile()
    finally:
        sanitize.disable()
        sanitize.restore(previous)
    return state.report()


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.lint import CodeModule, Severity, lint_code, self_lint

    threshold = Severity.from_name(args.fail_level)
    if not args.files and not args.self:
        print("repro check: no input (pass .py/.json paths or --self)",
              file=sys.stderr)
        return LINT_PARSE_ERROR

    worst = LINT_CLEAN

    def account(diagnostics, source):
        nonlocal worst
        print(_render(diagnostics, args.format, source))
        if diagnostics.at_least(threshold):
            worst = LINT_FINDINGS

    if args.self:
        try:
            account(self_lint(), "src/repro (self-lint)")
        except SyntaxError as exc:
            print(f"repro check: cannot parse {exc.filename}: {exc}",
                  file=sys.stderr)
            return LINT_PARSE_ERROR

    for path in args.files:
        if path.endswith(".py"):
            try:
                module = CodeModule.from_file(path)
            except (OSError, SyntaxError) as exc:
                print(f"{path}: cannot parse: {exc}", file=sys.stderr)
                return LINT_PARSE_ERROR
            account(lint_code(module), path)
        else:
            code = _cmd_lint(argparse.Namespace(
                files=[path], format=args.format,
                fail_level=args.fail_level, list_rules=False))
            if code == LINT_PARSE_ERROR:
                return code
            worst = max(worst, code)

    if args.self and not args.no_smoke:
        try:
            report = _sanitizer_smoke()
        except Exception as exc:  # noqa: BLE001 - smoke must not crash CI silently
            print(f"repro check: sanitizer smoke failed: {exc}",
                  file=sys.stderr)
            return LINT_PARSE_ERROR
        if args.format == "text":
            print(report.render_text())
        else:
            import json

            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        if not report.ok():
            worst = LINT_FINDINGS
    return worst


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro import perf
    from repro.cli.render import render_deploy_report
    from repro.mapping.registry import make_embedder
    from repro.service import ServiceRequestBuilder
    from repro.topo import build_reference_multidomain

    def request(index: int):
        return (ServiceRequestBuilder(f"svc{index}")
                .sap("sap1").sap("sap2")
                .nf(f"svc{index}-fw", "firewall")
                .nf(f"svc{index}-nat", "nat")
                .chain("sap1", f"svc{index}-fw", f"svc{index}-nat", "sap2",
                       bandwidth=2.0).build())

    testbed = build_reference_multidomain(
        embedder=make_embedder(args.embedder))
    perf.reset()
    report = None
    for index in range(args.deploys):
        report = testbed.service_layer.submit(request(index))
        if not report.success:
            print(f"deploy svc{index} failed: {report.error}",
                  file=sys.stderr)
            return 1
    assert report is not None
    print(f"embedder: {args.embedder}")
    print(f"last deploy ({args.deploys} total):")
    print(render_deploy_report(report))
    index_stats = testbed.escape.cal.substrate_index.stats()
    print("\nsubstrate index: "
          f"{index_stats['infras']} infras / {index_stats['types']} typed "
          f"candidate sets, {index_stats['applies']} incremental applies, "
          f"{index_stats['rebuilds']} rebuilds")
    print("\ncontrol-plane counters:")
    snapshot = perf.snapshot()
    shown = False
    for prefix in ("push.", "dispatch.", "cal.", "mapping."):
        for name in sorted(name for name in snapshot if
                           name.startswith(prefix)):
            print(f"  {name:24s} {snapshot[name]:g}")
            shown = True
    if not shown:
        print("  (none recorded)")
    return 0


def _reference_requests(count: int, prefix: str):
    """Service requests for the observability subcommands: ``count``
    two-NF chains over the Fig. 1 reference testbed."""
    from repro.service import ServiceRequestBuilder

    for index in range(count):
        yield (ServiceRequestBuilder(f"{prefix}{index}")
               .sap("sap1").sap("sap2")
               .nf(f"{prefix}{index}-fw", "firewall")
               .nf(f"{prefix}{index}-nat", "nat")
               .chain("sap1", f"{prefix}{index}-fw", f"{prefix}{index}-nat",
                      "sap2", bandwidth=2.0)
               .build())


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.obs.trace import render_tree, validate_chrome_trace
    from repro.topo import build_reference_multidomain

    previous = obs.disable()
    state = obs.enable(fresh=True)
    try:
        testbed = build_reference_multidomain()
        for index, request in enumerate(
                _reference_requests(args.deploys, "trace")):
            report = testbed.service_layer.submit(request)
            if not report.success:
                print(f"deploy trace{index} failed: {report.error}",
                      file=sys.stderr)
                return 1
    finally:
        obs.disable()
        obs.restore(previous)
    print(render_tree(state.tracer))
    if args.chrome:
        data = state.tracer.export_chrome()
        problems = validate_chrome_trace(data)
        if problems:
            for problem in problems:
                print(f"repro trace: invalid trace: {problem}",
                      file=sys.stderr)
            return 1
        with open(args.chrome, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=2)
        print(f"\nwrote {len(data['traceEvents'])} trace events to "
              f"{args.chrome} (load in Perfetto or chrome://tracing)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro import perf
    from repro.obs.metrics import render_prometheus
    from repro.topo import build_reference_multidomain

    testbed = build_reference_multidomain()
    perf.reset()
    for index, request in enumerate(
            _reference_requests(args.deploys, "svc")):
        report = testbed.service_layer.submit(request)
        if not report.success:
            print(f"deploy svc{index} failed: {report.error}",
                  file=sys.stderr)
            return 1
    print(render_prometheus(counter_snapshot=perf.snapshot()), end="")
    return 0


def _cmd_events(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.obs.events import render_jsonl
    from repro.topo import build_reference_multidomain

    previous = obs.disable()
    state = obs.enable(fresh=True)
    if args.follow:
        # tail mode: print each event the moment it is emitted instead
        # of replaying the ring afterwards
        state.events.subscribe(
            lambda event: print(json.dumps(event, default=str)))
    failures = 0
    try:
        testbed = build_reference_multidomain()
        if args.faults:
            from repro.resilience.faults import FaultPlan, FaultyAdapter

            cal = testbed.escape.cal
            plan = FaultPlan.random_plan(args.seed, sorted(cal.adapters),
                                         rate=0.3, length=20)
            for name, adapter in list(cal.adapters.items()):
                cal.adapters[name] = FaultyAdapter(adapter, plan)
        for request in _reference_requests(args.deploys, "ev"):
            report = testbed.service_layer.submit(request)
            if not report.success:
                failures += 1
    finally:
        obs.disable()
        obs.restore(previous)
    if not args.follow:
        events = state.events.events(limit=args.limit)
        if events:
            print(render_jsonl(events))
    if failures:
        print(f"repro events: {failures} deploy(s) failed under faults "
              "(see deploy events above)", file=sys.stderr)
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.recovery import (
        CrashPlan,
        IntentJournal,
        OrchestratorCrash,
        recover,
    )
    from repro.topo import build_reference_multidomain

    journal = IntentJournal(args.journal,
                            checkpoint_every=args.checkpoint_every)
    if args.crash_at is not None:
        journal.crash_plan = CrashPlan(at=args.crash_at,
                                       label=f"--crash-at {args.crash_at}")
    else:
        journal.crash_plan = CrashPlan.random_plan(
            args.seed, horizon=max(4, args.deploys * 4))
    testbed = build_reference_multidomain()
    escape = testbed.escape
    escape.journal = journal
    journal.state_provider = escape.export_state

    crashed = None
    try:
        for index, request in enumerate(
                _reference_requests(args.deploys, "rc")):
            report = testbed.service_layer.submit(request)
            if not report.success:
                print(f"deploy rc{index} failed: {report.error}",
                      file=sys.stderr)
                return 1
        escape.teardown("rc0")
    except OrchestratorCrash as crash:
        crashed = crash
    if crashed is not None:
        print(f"orchestrator crashed: {crashed}")
    else:
        print(f"no crash point hit in {journal.total_appends} journal "
              "appends; recovering anyway")

    if args.journal:
        # prove the on-disk log round-trips: recover from a re-read
        # file, exactly as a successor process would
        journal.close()
        journal = IntentJournal.load(args.journal)
        print(f"re-read {len(journal)} journal record(s) from "
              f"{args.journal}")
    adapters = list(escape.cal.adapters.values())
    result = recover(journal, adapters, name=f"{escape.name}-successor",
                     dry_run=args.dry_run)
    print(result.render_text())
    if args.dry_run:
        return 0

    successor = result.orchestrator
    expected = sorted(journal.replay().state.get("services", {}))
    actual = sorted(successor.deployed_services())
    if actual != expected or not result.ok():
        print(f"recovery DIVERGED: books {actual} vs journal {expected}, "
              f"pushes ok={result.ok()}", file=sys.stderr)
        return 1
    print(f"verified: successor books {len(actual)} service(s), journal "
          "fold matches, every reconciliation push landed")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    from repro.click.catalog import NF_CATALOG

    for name in sorted(NF_CATALOG):
        impl = NF_CATALOG[name]
        resources = impl.default_resources
        print(f"{name:14s} cpu={resources.cpu:<4g} mem={resources.mem:<6g} "
              f"{impl.description}")
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    experiments = [
        ("FIG1", "joint control plane over 4 domains",
         "test_bench_fig1_stack.py"),
        ("DEMO-i", "BiS-BiS abstraction", "test_bench_abstraction.py"),
        ("DEMO-ii", "deploy over unified resources", "test_bench_deploy.py"),
        ("DEMO-iii(a)", "recursive orchestration",
         "test_bench_recursion.py"),
        ("DEMO-iii(b)", "NF decomposition", "test_bench_decomposition.py"),
        ("EXT-1", "embedding scalability", "test_bench_mapping_scale.py"),
        ("EXT-2", "control-channel overhead",
         "test_bench_control_plane.py"),
        ("EXT-3", "dataplane behaviour", "test_bench_dataplane.py"),
        ("EXT-3m", "mapping quality x speed matrix",
         "test_bench_mapping_matrix.py"),
        ("EXT-4", "service churn", "test_bench_churn.py"),
        ("EXT-5", "elastic scaling", "test_bench_elastic.py"),
        ("ABL-1", "view-policy ablation", "test_bench_view_ablation.py"),
    ]
    for exp_id, title, target in experiments:
        print(f"{exp_id:12s} {title:36s} "
              f"pytest benchmarks/{target} --benchmark-only -s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multi-domain service orchestration (SIGCOMM'15 "
                    "reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="deploy + probe the demo chain")
    demo.add_argument("--bandwidth", type=float, default=10.0)
    demo.add_argument("--max-delay", type=float, default=80.0)
    demo.add_argument("--packets", type=int, default=5)
    demo.set_defaults(func=_cmd_demo)

    topology = sub.add_parser("topology", help="print the global view")
    topology.add_argument("--format", choices=("ascii", "dot"),
                          default="ascii")
    topology.add_argument("--emu-switches", type=int, default=2)
    topology.add_argument("--sdn-switches", type=int, default=2)
    topology.set_defaults(func=_cmd_topology)

    lint = sub.add_parser(
        "lint", help="static-analyze NFFG JSON files")
    lint.add_argument("files", nargs="*", metavar="NFFG.json",
                      help="NFFG files (nffg_to_dict JSON) to analyze")
    lint.add_argument("--format", choices=("text", "json", "sarif"),
                      default="text")
    lint.add_argument("--fail-level", choices=("info", "warning", "error"),
                      default="warning",
                      help="lowest severity that causes exit code 1")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.set_defaults(func=_cmd_lint)

    check = sub.add_parser(
        "check",
        help="concurrency gate: code-scope lint + sanitizer smoke")
    check.add_argument("files", nargs="*", metavar="PATH",
                       help="Python sources (code-scope CC rules) and/or "
                            "NFFG JSON files (graph rules)")
    check.add_argument("--self", action="store_true",
                       help="lint the installed repro package itself and "
                            "run the runtime sanitizer smoke")
    check.add_argument("--no-smoke", action="store_true",
                       help="skip the runtime sanitizer smoke (--self)")
    check.add_argument("--format", choices=("text", "json", "sarif"),
                       default="text")
    check.add_argument("--fail-level",
                       choices=("info", "warning", "error"),
                       default="warning",
                       help="lowest severity that causes exit code 1")
    check.set_defaults(func=_cmd_check)

    scale = sub.add_parser("scale", help="run an elastic scaling cycle")
    scale.add_argument("--packets", type=int, default=250)
    scale.add_argument("--threshold", type=float, default=100.0)
    scale.add_argument("--max-level", type=int, default=3)
    scale.set_defaults(func=_cmd_scale)

    from repro.mapping.registry import embedder_names
    perf = sub.add_parser(
        "perf", help="print control-plane counters for a deploy run")
    perf.add_argument("--deploys", type=int, default=3,
                      help="number of services to deploy (default 3)")
    perf.add_argument("--embedder", choices=embedder_names(),
                      default="greedy",
                      help="embedding algorithm (default greedy)")
    perf.set_defaults(func=_cmd_perf)

    trace = sub.add_parser(
        "trace", help="trace reference deploys; print the span tree")
    trace.add_argument("--deploys", type=int, default=2,
                       help="number of services to deploy (default 2)")
    trace.add_argument("--chrome", metavar="PATH",
                       help="also write a Chrome trace_event JSON file "
                            "(Perfetto / chrome://tracing)")
    trace.set_defaults(func=_cmd_trace)

    metrics = sub.add_parser(
        "metrics",
        help="deploy a few services, print Prometheus-format metrics")
    metrics.add_argument("--deploys", type=int, default=5,
                         help="number of services to deploy (default 5)")
    metrics.set_defaults(func=_cmd_metrics)

    events = sub.add_parser(
        "events", help="print the structured event log as JSONL")
    events.add_argument("--deploys", type=int, default=2,
                        help="number of services to deploy (default 2)")
    events.add_argument("--faults", action="store_true",
                        help="inject a seeded random fault schedule so "
                             "retry/breaker events show up")
    events.add_argument("--seed", type=int, default=7,
                        help="fault schedule seed (with --faults)")
    events.add_argument("--follow", action="store_true",
                        help="print events live as they are emitted "
                             "instead of replaying the ring at the end")
    events.add_argument("--limit", type=int, default=None,
                        help="only replay the last N events")
    events.set_defaults(func=_cmd_events)

    recover_p = sub.add_parser(
        "recover",
        help="crash the reference control plane mid-run, then recover "
             "it from the write-ahead intent journal")
    recover_p.add_argument("--deploys", type=int, default=4,
                           help="services to deploy before the crash "
                                "window closes (default 4)")
    recover_p.add_argument("--seed", type=int, default=7,
                           help="seed for the crash point (default 7)")
    recover_p.add_argument("--crash-at", type=int, default=None,
                           metavar="K",
                           help="crash before journal append #K instead "
                                "of the seeded point")
    recover_p.add_argument("--journal", metavar="PATH", default=None,
                           help="file-backed JSONL journal; recovery "
                                "re-reads it from disk (default: "
                                "in-memory)")
    recover_p.add_argument("--checkpoint-every", type=int, default=32,
                           help="commits between checkpoints (default 32)")
    recover_p.add_argument("--dry-run", action="store_true",
                           help="print the recovery diff without pushing "
                                "or growing the journal")
    recover_p.set_defaults(func=_cmd_recover)

    catalog = sub.add_parser("catalog", help="list deployable NF types")
    catalog.set_defaults(func=_cmd_catalog)

    experiments = sub.add_parser("experiments",
                                 help="list experiment harnesses")
    experiments.set_defaults(func=_cmd_experiments)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # output piped into head/less that exited — not an error
        try:
            sys.stdout.close()
        except Exception:  # noqa: BLE001 - best effort on teardown
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
