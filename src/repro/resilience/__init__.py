"""Failure model for the multi-domain control plane.

The paper's joint control plane programs many *unreliable* technology
domains; this package supplies the three mechanisms that keep one flaky
domain from taking the whole orchestration down, plus the fault
injection needed to test them deterministically:

- :mod:`repro.resilience.faults` — a seeded :class:`FaultPlan` that
  drops, delays, errors or crashes adapter pushes, view fetches and
  NETCONF RPCs on a deterministic schedule (:class:`FaultyAdapter`
  wraps any :class:`~repro.orchestration.adapters.DomainAdapter`);
- :mod:`repro.resilience.retry` — :class:`RetryPolicy`: bounded
  attempts with exponential, seeded-jitter backoff and an overall
  deadline, applied inside ``DomainAdapter.install()``/``fetch_view()``;
- :mod:`repro.resilience.breaker` — per-adapter :class:`CircuitBreaker`
  (closed / open / half-open) so the CAL skips domains that keep
  failing and reconciles them when they come back.

Everything is observable through ``repro.perf`` under ``resilience.*``.
"""

from repro.resilience.breaker import BreakerState, CircuitBreaker
from repro.resilience.retry import RetryOutcome, RetryPolicy, is_transient

#: names served lazily from repro.resilience.faults — that module
#: subclasses DomainAdapter, and the adapters module itself imports
#: repro.resilience.retry, so an eager import here would be circular
_FAULT_NAMES = (
    "DomainDown",
    "FaultError",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultTimeout",
    "FaultyAdapter",
    "InjectedFault",
    "TransientFault",
)


def __getattr__(name: str):
    if name in _FAULT_NAMES:
        from repro.resilience import faults

        return getattr(faults, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DomainDown",
    "FaultError",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "FaultTimeout",
    "FaultyAdapter",
    "InjectedFault",
    "RetryOutcome",
    "RetryPolicy",
    "TransientFault",
    "is_transient",
]
