"""Per-domain circuit breaker.

Classic three-state breaker guarding one domain adapter:

- **closed** — pushes flow normally; consecutive failures are counted;
- **open** — tripped after ``failure_threshold`` consecutive failures:
  the CAL skips the domain instead of hammering it, and queues its
  cumulative configuration for reconciliation;
- **half-open** — after ``recovery_time_s`` (or an explicit
  :meth:`force_half_open`, e.g. on an operator signal that the domain
  is back) one probe push is allowed through: success closes the
  breaker, failure re-opens it.

The clock is injectable so simulated time and tests stay deterministic.
"""

from __future__ import annotations

import enum
import time
from typing import Callable

from repro import obs
from repro.perf import counters


class BreakerState(str, enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure accountant for one domain adapter."""

    def __init__(self, name: str = "", *, failure_threshold: int = 3,
                 recovery_time_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.name = name
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.clock = clock
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self.consecutive_failures = 0
        #: lifetime trip count (closed/half-open -> open transitions)
        self.trips = 0

    @property
    def state(self) -> BreakerState:
        """Current state; advances open -> half-open when the recovery
        window has elapsed."""
        if self._state is BreakerState.OPEN and \
                self.clock() - self._opened_at >= self.recovery_time_s:
            self._half_open()
        return self._state

    def allow(self) -> bool:
        """May a push go through right now?  Open blocks; half-open
        lets the (single, synchronous) probe through."""
        return self.state is not BreakerState.OPEN

    def force_half_open(self) -> None:
        """Operator/reconciler override: allow a probe immediately."""
        if self._state is BreakerState.OPEN:
            self._half_open()

    def record(self, success: bool) -> None:
        if success:
            self.record_success()
        else:
            self.record_failure()

    def record_success(self) -> None:
        if self._state is not BreakerState.CLOSED:
            counters.incr("resilience.breaker.close")
            obs.event("breaker.close", breaker=self.name)
        self._state = BreakerState.CLOSED
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self._state is BreakerState.HALF_OPEN:
            self._trip()  # failed probe: straight back to open
        elif self._state is BreakerState.CLOSED and \
                self.consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = BreakerState.OPEN
        self._opened_at = self.clock()
        self.trips += 1
        counters.incr("resilience.breaker.trip")
        obs.event("breaker.trip", breaker=self.name,
                  failures=self.consecutive_failures, trips=self.trips)

    def _half_open(self) -> None:
        self._state = BreakerState.HALF_OPEN
        counters.incr("resilience.breaker.halfopen")
        obs.event("breaker.halfopen", breaker=self.name)

    # -- state persistence --------------------------------------------------

    def export_state(self) -> dict:
        """Serializable snapshot of the state machine.

        An open breaker exports the *remaining* recovery time rather
        than its ``_opened_at`` instant: monotonic clocks are not
        comparable across processes, so the importer re-anchors the
        window against its own clock.
        """
        record = {
            "state": self.state.value,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
        }
        if self._state is BreakerState.OPEN:
            elapsed = self.clock() - self._opened_at
            record["open_remaining_s"] = max(
                0.0, self.recovery_time_s - elapsed)
        return record

    def import_state(self, record: dict) -> None:
        """Restore an :meth:`export_state` snapshot."""
        self._state = BreakerState(record.get("state", "closed"))
        self.consecutive_failures = int(
            record.get("consecutive_failures", 0))
        self.trips = int(record.get("trips", 0))
        if self._state is BreakerState.OPEN:
            remaining = float(record.get("open_remaining_s", 0.0))
            self._opened_at = self.clock() - (self.recovery_time_s
                                              - remaining)

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.name} {self._state.value} "
                f"failures={self.consecutive_failures} trips={self.trips}>")
