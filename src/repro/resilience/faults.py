"""Deterministic fault injection for domain adapters and NETCONF RPCs.

A :class:`FaultPlan` is a schedule of :class:`FaultSpec` entries, each
matching an operation stream (``push`` / ``get_view`` / ``rpc:*`` on a
named domain) and injecting a fault for a bounded number of matching
calls.  The plan is consulted *before* the real operation runs — drop
and error faults raise, delay faults charge virtual latency, crash
faults keep raising until :meth:`FaultPlan.clear` revives the domain.

:func:`FaultPlan.random_plan` derives a whole schedule from one integer
seed, so chaos/soak tests replay exactly.  :class:`FaultyAdapter` wraps
any :class:`~repro.orchestration.adapters.DomainAdapter` with the hooks
in place; :meth:`FaultPlan.netconf_hook` plugs the same plan into a
:class:`~repro.netconf.client.NetconfClient` (``fault_hook``), so
faults can also surface mid-RPC inside a NETCONF push.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import obs
from repro.nffg.graph import NFFG
from repro.orchestration.adapters import DomainAdapter
from repro.orchestration.report import AdapterReport
from repro.perf import counters
from repro.sanitize import make_lock, note_blocking
from repro.sim.random import SeededRandom


class InjectedFault(RuntimeError):
    """Base class for every fault raised by a :class:`FaultPlan`."""


class TransientFault(InjectedFault):
    """A one-off failure: the same request may succeed if retried."""


class FaultTimeout(InjectedFault, TimeoutError):
    """A dropped request/reply: looks like a lost message."""


class FaultError(InjectedFault):
    """A hard, non-retryable failure (semantic rejection)."""


class DomainDown(InjectedFault):
    """The domain crashed: every operation fails until it is revived."""


class FaultKind(str, enum.Enum):
    ERROR = "error"      # transient failure (retryable)
    DROP = "drop"        # lost message -> timeout (retryable)
    DELAY = "delay"      # operation succeeds after added latency
    FATAL = "fatal"      # hard failure (not retryable)
    CRASH = "crash"      # domain down until FaultPlan.clear()


_KIND_EXC = {
    FaultKind.ERROR: TransientFault,
    FaultKind.DROP: FaultTimeout,
    FaultKind.FATAL: FaultError,
    FaultKind.CRASH: DomainDown,
}


@dataclass
class FaultSpec:
    """One scheduled fault stream.

    ``op`` matches exactly, by ``*`` wildcard, or by prefix (spec
    ``rpc`` matches call ``rpc:commit``).  ``after`` skips the first N
    matching calls; ``count`` bounds how many injections happen (CRASH
    ignores it and persists until cleared).
    """

    domain: str
    op: str = "*"
    kind: FaultKind = FaultKind.ERROR
    count: int = 1
    after: int = 0
    delay_s: float = 0.0
    message: str = ""
    #: calls seen / faults injected so far (mutated by the plan)
    seen: int = 0
    injected: int = 0

    def matches(self, domain: str, op: str) -> bool:
        if self.domain not in ("*", domain):
            return False
        return self.op == "*" or self.op == op \
            or op.startswith(self.op + ":")

    def exhausted(self) -> bool:
        return self.kind is not FaultKind.CRASH \
            and self.injected >= self.count


@dataclass
class _Injection:
    domain: str
    op: str
    kind: FaultKind


class FaultPlan:
    """A deterministic schedule of faults across domains and operations."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = SeededRandom(seed)
        # the concurrent push dispatcher consults the plan from several
        # worker threads; schedule edits (add/crash/clear may run while
        # a storm is in flight) and spec.seen/injected bookkeeping must
        # not race
        self.specs: list[FaultSpec] = []  # guarded-by: _lock
        #: every injection that actually fired, in order
        self.history: list[_Injection] = []
        #: virtual seconds charged by DELAY faults (nothing sleeps)
        self.virtual_delay_s = 0.0
        #: real-sleep hook for DELAY faults; default accounts only
        self.sleep: Optional[Callable[[float], None]] = None
        self._down: set[str] = set()  # guarded-by: _lock
        self._lock = make_lock("resilience.faultplan")

    # -- schedule construction ---------------------------------------------

    def add(self, domain: str, op: str = "*", *,
            kind: FaultKind = FaultKind.ERROR, count: int = 1,
            after: int = 0, delay_s: float = 0.0,
            message: str = "") -> "FaultPlan":
        with self._lock:
            self.specs.append(FaultSpec(domain=domain, op=op, kind=kind,
                                        count=count, after=after,
                                        delay_s=delay_s, message=message))
        return self

    def crash(self, domain: str) -> "FaultPlan":
        """Take a domain hard-down (every op fails until cleared)."""
        with self._lock:
            self._down.add(domain)
        return self

    def clear(self, domain: str) -> "FaultPlan":
        """Revive a crashed domain and retire its CRASH specs."""
        with self._lock:
            self._down.discard(domain)
            self.specs = [spec for spec in self.specs
                          if not (spec.kind is FaultKind.CRASH
                                  and spec.domain in (domain, "*"))]
        return self

    @classmethod
    def random_plan(cls, seed: int, domains: list[str], *,
                    ops: tuple[str, ...] = ("push",),
                    rate: float = 0.2, length: int = 50,
                    kinds: tuple[FaultKind, ...] = (FaultKind.ERROR,
                                                    FaultKind.DROP),
                    ) -> "FaultPlan":
        """A seeded random schedule: for each (domain, op) stream, each
        of the first ``length`` calls independently faults with
        probability ``rate``.  Same seed => same schedule, regardless
        of how calls interleave across streams."""
        plan = cls(seed)
        for domain in sorted(domains):
            for op in ops:
                stream = plan.rng.fork(f"{domain}/{op}")
                for call_index in range(length):
                    if stream.random() < rate:
                        plan.add(domain, op,
                                 kind=stream.choice(list(kinds)),
                                 count=1, after=call_index)
        return plan

    # -- consultation --------------------------------------------------------

    def exhausted(self) -> bool:
        """True when no fault can ever fire again (no crashed domains,
        every bounded spec used up)."""
        return not self._down and all(spec.exhausted()
                                      for spec in self.specs)

    def before(self, domain: str, op: str) -> float:
        """Consult the plan ahead of one operation.

        Raises the scheduled fault, or returns the delay (seconds) to
        charge against the call — 0.0 when nothing is scheduled.
        """
        with self._lock:
            if domain in self._down:
                self._record(domain, op, FaultKind.CRASH)
                raise DomainDown(f"{domain}: domain is down")
            delay = 0.0
            for spec in self.specs:
                if not spec.matches(domain, op):
                    continue
                spec.seen += 1
                if spec.exhausted() or spec.seen <= spec.after:
                    continue
                spec.injected += 1
                self._record(domain, op, spec.kind)
                if spec.kind is FaultKind.DELAY:
                    delay += spec.delay_s
                    continue
                if spec.kind is FaultKind.CRASH:
                    self._down.add(domain)
                exc_type = _KIND_EXC[spec.kind]
                raise exc_type(spec.message
                               or f"injected {spec.kind.value} on "
                                  f"{domain}/{op}")
            if delay > 0.0:
                self.virtual_delay_s += delay
        # sleep outside the lock: concurrent delayed pushes must overlap
        # (max-over-domains, not sum) when the dispatcher fans out
        if delay > 0.0 and self.sleep is not None:
            note_blocking(f"FaultPlan.sleep({delay:g})")
            self.sleep(delay)
        return delay

    def _record(self, domain: str, op: str, kind: FaultKind) -> None:
        self.history.append(_Injection(domain=domain, op=op, kind=kind))
        counters.incr("resilience.faults.injected")
        counters.incr(f"resilience.faults.{kind.value}")
        obs.event("fault.injected", domain=domain, op=op, kind=kind.value)

    def netconf_hook(self, domain: str) -> Callable[[str], None]:
        """A ``NetconfClient.fault_hook`` bound to this plan: consults
        the ``rpc:<op>`` stream of ``domain`` before each RPC."""
        def hook(op: str) -> None:
            self.before(domain, f"rpc:{op}")
        return hook

    def __repr__(self) -> str:
        return (f"<FaultPlan seed={self.seed} specs={len(self.specs)} "
                f"injected={len(self.history)} down={sorted(self._down)}>")


class FaultyAdapter(DomainAdapter):
    """A :class:`DomainAdapter` wrapper that consults a fault plan
    before delegating pushes and view fetches to the real adapter.

    Transparent otherwise: control stats, readiness and flow stats pass
    straight through, so a wrapped adapter drops into any testbed."""

    def __init__(self, inner: DomainAdapter, plan: FaultPlan):
        super().__init__(inner.name, inner.domain_type)
        self.inner = inner
        self.plan = plan
        self.retry_policy = inner.retry_policy

    def get_view(self) -> NFFG:
        self.plan.before(self.name, "get_view")
        return self.inner.get_view()

    def _push(self, install: NFFG) -> None:
        self.plan.before(self.name, "push")
        self.inner._push(install)

    def _do_push(self, install: NFFG, force_full: bool = False):
        # consult the plan first: a fault fires before any RPC reaches
        # the inner adapter, so its acknowledged-config state stays in
        # step with the (untouched) server
        self.plan.before(self.name, "push")
        return self.inner._do_push(install, force_full)

    def reset_delta_state(self) -> None:
        self.inner.reset_delta_state()

    def install(self, install: NFFG, *,
                force_full: bool = False) -> AdapterReport:
        report = super().install(install, force_full=force_full)
        self.inner.installs = self.installs
        return report

    def control_stats(self) -> tuple[int, int]:
        return self.inner.control_stats()

    def ready(self) -> bool:
        return self.inner.ready()

    def flow_stats(self) -> dict[str, tuple[int, int]]:
        return self.inner.flow_stats()

    def __repr__(self) -> str:
        return f"<FaultyAdapter {self.inner!r} plan={self.plan!r}>"
