"""Bounded retry with exponential, seeded-jitter backoff.

A :class:`RetryPolicy` wraps one callable attempt: transient failures
are retried up to ``max_attempts`` with exponentially growing backoff
(jittered through :class:`~repro.sim.random.SeededRandom`, so every run
is reproducible from the policy seed), an overall ``deadline_s`` caps
the total time spent across attempts, and the outcome records how many
attempts and how much backoff it took — the adapters copy both onto
their :class:`~repro.orchestration.report.AdapterReport`.

Backoff is *accounted, not slept* by default: the reproduction runs on
virtual time, so the default ``sleep`` hook only tallies the would-be
wait.  Pass ``sleep=time.sleep`` to make a real deployment actually
back off.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro import obs
from repro.perf import counters, observe
from repro.sanitize import note_blocking
from repro.sim.random import SeededRandom


def is_transient(exc: BaseException) -> bool:
    """Default classifier: is this failure worth retrying?

    Transient means the same request may succeed if repeated: injected
    transient faults, timeouts (lost replies), connection drops, and
    NETCONF errors whose tag marks a temporary condition.  Semantic
    errors (unknown switch, validation failures) are not retried —
    repeating them only hammers the domain.
    """
    from repro.netconf.client import NetconfError
    from repro.resilience.faults import DomainDown, TransientFault

    if isinstance(exc, DomainDown):
        return False
    if isinstance(exc, TransientFault):
        return True
    if isinstance(exc, (TimeoutError, ConnectionError)):
        return True
    if isinstance(exc, NetconfError):
        return exc.tag in ("timeout", "resource-denied", "in-use",
                           "unavailable")
    return False


@dataclass
class RetryOutcome:
    """What one retried operation amounted to."""

    success: bool
    value: Any = None
    error: Optional[BaseException] = None
    #: attempts actually made (1 = first try succeeded, no retry)
    attempts: int = 1
    #: total backoff charged between attempts (seconds, virtual unless
    #: the policy sleeps for real)
    backoff_s: float = 0.0


@dataclass
class RetryPolicy:
    """Retry budget for one domain operation (push / view fetch)."""

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 2.0
    #: +/- fraction of jitter applied to each backoff step (seeded)
    jitter: float = 0.1
    #: overall budget across attempts; exceeded => stop retrying
    deadline_s: float = float("inf")
    seed: int = 0
    #: called with each backoff delay; None = account only (virtual)
    sleep: Optional[Callable[[float], None]] = None
    clock: Callable[[], float] = field(default=time.monotonic)
    classify: Callable[[BaseException], bool] = field(default=is_transient)

    def backoff_for(self, attempt: int, rng: SeededRandom) -> float:
        """Backoff after the ``attempt``-th failure (1-based)."""
        raw = self.backoff_base_s * self.backoff_multiplier ** (attempt - 1)
        delay = min(self.backoff_max_s, raw)
        if self.jitter > 0.0:
            delay = rng.jitter(delay, self.jitter)
        return delay

    def run(self, fn: Callable[[], Any]) -> RetryOutcome:
        """Run ``fn`` under this policy; never raises."""
        started = self.clock()
        rng: Optional[SeededRandom] = None
        backoff_total = 0.0
        last_exc: Optional[BaseException] = None
        attempt = 0
        while attempt < self.max_attempts:
            attempt += 1
            try:
                value = fn()
            except Exception as exc:  # noqa: BLE001 - fault isolation
                last_exc = exc
            else:
                return RetryOutcome(success=True, value=value,
                                    attempts=attempt,
                                    backoff_s=backoff_total)
            if attempt >= self.max_attempts:
                break
            if not self.classify(last_exc):
                counters.incr("resilience.retry.nonretryable")
                break
            if self.clock() - started >= self.deadline_s:
                counters.incr("resilience.retry.deadline")
                break
            if rng is None:
                rng = SeededRandom(self.seed)
            delay = self.backoff_for(attempt, rng)
            backoff_total += delay
            observe("retry.backoff_s", delay)
            obs.event("retry", attempt=attempt,
                      delay_ms=round(delay * 1e3, 3),
                      error=type(last_exc).__name__)
            with obs.span("retry", attempt=attempt):
                if self.sleep is not None:
                    note_blocking(f"RetryPolicy.backoff({delay:g})")
                    self.sleep(delay)
            counters.incr("resilience.retry.attempts")
        counters.incr("resilience.retry.giveup")
        return RetryOutcome(success=False, error=last_exc,
                            attempts=attempt, backoff_s=backoff_total)
