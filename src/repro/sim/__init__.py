"""Discrete-event simulation kernel.

Every substrate in this reproduction (packet network, cloud, Universal
Node, control channels) runs on virtual time provided by this kernel so
experiments are deterministic and independent of wall-clock speed.
"""

from repro.sim.kernel import (
    Event,
    EventCancelled,
    Process,
    SimClock,
    Simulator,
    SimulationError,
)
from repro.sim.random import SeededRandom

__all__ = [
    "Event",
    "EventCancelled",
    "Process",
    "SimClock",
    "Simulator",
    "SimulationError",
    "SeededRandom",
]
