"""Minimal, deterministic discrete-event simulation kernel.

The kernel keeps a priority queue of timestamped events.  Components
schedule callbacks (:meth:`Simulator.schedule`) or run generator-based
processes (:meth:`Simulator.spawn`) that ``yield`` delays.  Ties are
broken by a monotonically increasing sequence number so runs are fully
reproducible.

Time is a float in **milliseconds** throughout the code base; the unit
only matters relative to the link delays and service times configured by
the domains.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterable, Optional

from repro import obs
from repro.sanitize import make_lock


class SimulationError(RuntimeError):
    """Raised for invalid kernel usage (e.g. scheduling in the past)."""


class EventCancelled(Exception):
    """Delivered into a process whose pending event got cancelled."""


@dataclass(order=True)
class _QueueEntry:
    time: float
    seq: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be
    cancelled before they fire.  A fired or cancelled event is inert.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"<Event t={self.time:.3f} {state} {getattr(self.callback, '__name__', self.callback)}>"


class SimClock:
    """Read-only view of the simulator's current virtual time."""

    def __init__(self, simulator: "Simulator"):
        self._simulator = simulator

    @property
    def now(self) -> float:
        return self._simulator.now

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<SimClock now={self.now:.3f}>"


class Process:
    """Generator-based process.

    The generator may yield:

    - a ``float`` delay (sleep that many virtual milliseconds),
    - another :class:`Process` (wait for it to finish; its return value
      is sent back in),
    - ``None`` (yield control, resume immediately at the same time).
    """

    __slots__ = ("simulator", "generator", "name", "finished", "result",
                 "_waiters", "_pending_event")

    def __init__(self, simulator: "Simulator", generator: Generator, name: str = ""):
        self.simulator = simulator
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self.finished = False
        self.result: Any = None
        self._waiters: list[Process] = []
        self._pending_event: Optional[Event] = None

    def interrupt(self) -> None:
        """Cancel the process's pending sleep and throw EventCancelled."""
        if self.finished:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
            self.simulator.schedule(0.0, self._throw, EventCancelled())

    def _throw(self, exc: BaseException) -> None:
        if self.finished:
            return
        try:
            yielded = self.generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
        except EventCancelled:
            self._finish(None)
        else:
            self._handle_yield(yielded)

    def _step(self, value: Any = None) -> None:
        if self.finished:
            return
        self._pending_event = None
        try:
            yielded = self.generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
        else:
            self._handle_yield(yielded)

    def _handle_yield(self, yielded: Any) -> None:
        if yielded is None:
            self._pending_event = self.simulator.schedule(0.0, self._step)
        elif isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(f"process {self.name!r} yielded negative delay {yielded}")
            self._pending_event = self.simulator.schedule(float(yielded), self._step)
        elif isinstance(yielded, Process):
            if yielded.finished:
                self._pending_event = self.simulator.schedule(0.0, self._step, yielded.result)
            else:
                yielded._waiters.append(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}")

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            self.simulator.schedule(0.0, waiter._step, result)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} {state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(5.0, seen.append, "b")
    >>> _ = sim.schedule(1.0, seen.append, "a")
    >>> sim.run()
    >>> seen
    ['a', 'b']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[_QueueEntry] = []
        self._seq = itertools.count()
        self._running = False
        self.events_processed = 0
        # domains share one simulator; the concurrent push dispatcher may
        # schedule from several worker threads at once (execution itself
        # stays single-threaded on the caller's thread, so _queue is only
        # lock-guarded on the insert side)
        self._schedule_lock = make_lock("sim.schedule")

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        with self._schedule_lock:
            event = Event(self.now + float(delay), callback, args)
            heapq.heappush(self._queue,
                           _QueueEntry(event.time, next(self._seq), event))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute virtual time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a generator-based :class:`Process` immediately."""
        process = Process(self, generator, name)
        self.schedule(0.0, process._step)
        return process

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Run a single event.  Returns False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            event = entry.event
            if event.cancelled:
                continue
            if event.time < self.now - 1e-12:
                raise SimulationError("event queue time went backwards")
            self.now = event.time
            event.fired = True
            self.events_processed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Run until the queue empties, ``until`` is reached, or
        ``max_events`` events fired (guards against runaway loops).

        With tracing on, the whole run happens inside a ``sim/run``
        span and the kernel's virtual clock is bound to the event log,
        so every event emitted by a callback carries ``vtime_ms``.
        """
        if not obs.enabled():
            self._run(until, max_events)
            return
        with obs.span("sim/run", at_ms=self.now) as span:
            previous = obs.bind_virtual_clock(lambda: self.now)
            try:
                self._run(until, max_events)
            finally:
                obs.restore_virtual_clock(previous)
            span.set(now_ms=self.now, events=self.events_processed)

    def _run(self, until: Optional[float],
             max_events: int) -> None:
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            fired = 0
            while self._queue:
                if until is not None and self._queue[0].time > until:
                    self.now = until
                    return
                if not self.step():
                    break
                fired += 1
                if fired >= max_events:
                    raise SimulationError(f"exceeded max_events={max_events}")
        finally:
            self._running = False

    def run_until_idle(self, settle: float = 0.0) -> None:
        """Run to queue exhaustion; optionally advance time by ``settle``."""
        self.run()
        if settle:
            self.now += settle

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for entry in self._queue if not entry.event.cancelled)

    def peek_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or None."""
        for entry in sorted(self._queue):
            if not entry.event.cancelled:
                return entry.time
        return None

    def clock(self) -> SimClock:
        return SimClock(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<Simulator now={self.now:.3f} pending={self.pending}>"


def drain(simulator: Simulator, processes: Iterable[Process]) -> list[Any]:
    """Run the simulator until all ``processes`` finished; return results."""
    processes = list(processes)
    simulator.run()
    unfinished = [p for p in processes if not p.finished]
    if unfinished:
        raise SimulationError(f"processes never finished: {unfinished}")
    return [p.result for p in processes]
