"""Seeded randomness helpers.

All stochastic behaviour in the reproduction (workload generation, jitter
on service times, scheduler tie-breaks) flows through
:class:`SeededRandom` so every experiment is reproducible from a single
integer seed.
"""

from __future__ import annotations

import random
import zlib
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")


class SeededRandom:
    """A thin wrapper over :class:`random.Random` with domain helpers."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def fork(self, label: str) -> "SeededRandom":
        """Derive an independent, reproducible child stream.

        The child seed must be stable across processes, so it is
        derived with :func:`zlib.crc32` — Python's built-in ``hash``
        is salted per process and would silently de-seed everything.
        """
        child_seed = zlib.crc32(f"{self.seed}/{label}".encode()) & 0x7FFFFFFF
        return SeededRandom(child_seed)

    # -- passthroughs ------------------------------------------------------

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def random(self) -> float:
        return self._rng.random()

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    # -- domain helpers ----------------------------------------------------

    def jitter(self, base: float, fraction: float = 0.1) -> float:
        """Return ``base`` perturbed by up to +/- ``fraction``."""
        return base * self._rng.uniform(1.0 - fraction, 1.0 + fraction)

    def weighted_choice(self, items: Iterable[tuple[T, float]]) -> T:
        items = list(items)
        total = sum(weight for _, weight in items)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        pick = self._rng.uniform(0.0, total)
        acc = 0.0
        for value, weight in items:
            acc += weight
            if pick <= acc:
                return value
        return items[-1][0]
