"""The emulated (Mininet-like) dataplane domain."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.click.catalog import supported_functional_types
from repro.infra.nfswitch import NFHostingSwitch
from repro.netem.network import Network
from repro.netem.node import Host
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType, InfraType, ResourceVector


class EmulatedDomain:
    """A Mininet-style topology of BiS-BiS switches + SAP hosts.

    ``node_ids`` become both the NFFG infra ids and the dataplane switch
    ids, so install-NFFGs translate to the dataplane without a rename
    table.  SAPs attach a :class:`~repro.netem.node.Host` to a switch
    port named ``sap-<sap_id>``.
    """

    domain_type = DomainType.INTERNAL

    def __init__(self, name: str, network: Network, *,
                 node_ids: Sequence[str] = (),
                 links: Iterable[tuple[str, str]] = (),
                 cpu_per_node: float = 8.0, mem_per_node: float = 8192.0,
                 storage_per_node: float = 128.0,
                 link_bandwidth: float = 1000.0, link_delay: float = 1.0,
                 supported_types: Optional[Sequence[str]] = None):
        self.name = name
        self.network = network
        self.cpu_per_node = cpu_per_node
        self.mem_per_node = mem_per_node
        self.storage_per_node = storage_per_node
        self.link_bandwidth = link_bandwidth
        self.link_delay = link_delay
        self.supported_types = list(
            supported_types if supported_types is not None
            else supported_functional_types())
        self.switches: dict[str, NFHostingSwitch] = {}
        self.sap_hosts: dict[str, Host] = {}
        self._links: list[tuple[str, str, str, str]] = []
        self._link_params: dict[tuple[str, str], tuple[float, float]] = {}
        self._handoff_ports: dict[str, tuple[str, str]] = {}
        for node_id in node_ids:
            self.add_switch(node_id)
        for src, dst in links:
            self.add_link(src, dst)

    # -- topology construction --------------------------------------------

    def add_switch(self, node_id: str) -> NFHostingSwitch:
        switch = NFHostingSwitch(node_id, self.network.simulator)
        self.network.add(switch)
        self.switches[node_id] = switch
        return switch

    def add_link(self, src: str, dst: str, *,
                 bandwidth: Optional[float] = None,
                 delay: Optional[float] = None) -> None:
        port_a, port_b = f"to-{dst}", f"to-{src}"
        effective_bw = bandwidth if bandwidth is not None else self.link_bandwidth
        effective_delay = delay if delay is not None else self.link_delay
        self.network.connect(src, port_a, dst, port_b,
                             bandwidth_mbps=effective_bw,
                             delay_ms=effective_delay)
        self._links.append((src, port_a, dst, port_b))
        self._link_params[(src, dst)] = (effective_bw, effective_delay)

    def add_sap(self, sap_id: str, switch_id: str) -> Host:
        host = self.network.add_host(f"{self.name}-host-{sap_id}")
        port = f"sap-{sap_id}"
        self.network.connect(host.id, "0", switch_id, port,
                             bandwidth_mbps=self.link_bandwidth, delay_ms=0.1)
        self.sap_hosts[sap_id] = host
        return host

    def add_handoff(self, tag: str, switch_id: str) -> tuple[str, str]:
        """Reserve an inter-domain hand-off port (wired by the testbed)."""
        port = f"sap-{tag}"
        self._handoff_ports[tag] = (switch_id, port)
        return switch_id, port

    def handoff(self, tag: str) -> tuple[str, str]:
        return self._handoff_ports[tag]

    # -- resource description ------------------------------------------------

    def domain_view(self) -> NFFG:
        """The domain's NFFG resource view (what its virtualizer sees)."""
        view = NFFG(id=f"{self.name}-view", name=f"emulated domain {self.name}")
        for node_id, switch in self.switches.items():
            infra = view.add_infra(
                node_id, infra_type=InfraType.BISBIS, domain=self.domain_type,
                resources=ResourceVector(
                    cpu=self.cpu_per_node, mem=self.mem_per_node,
                    storage=self.storage_per_node,
                    bandwidth=self.link_bandwidth * 10, delay=0.05),
                supported_types=self.supported_types)
            for port_id in switch.links:
                infra.add_port(port_id)
        for src, port_a, dst, port_b in self._links:
            if src in self.switches and dst in self.switches:
                physical = self.network.link_between(src, dst)
                if physical is not None and not physical.up:
                    continue  # failed links disappear from the view
                bandwidth, delay = self._link_params.get(
                    (src, dst), (self.link_bandwidth, self.link_delay))
                view.add_link(src, port_a, dst, port_b,
                              id=f"{self.name}-{src}-{dst}",
                              bandwidth=bandwidth, delay=delay)
        for sap_id in self.sap_hosts:
            sap = view.add_sap(sap_id)
            switch_id = self._sap_switch(sap_id)
            port = f"sap-{sap_id}"
            view.infra(switch_id).port(port).sap_tag = sap_id
            view.add_link(sap_id, list(sap.ports)[0], switch_id, port,
                          id=f"sl-{self.name}-{sap_id}",
                          bandwidth=self.link_bandwidth, delay=0.1)
        for tag, (switch_id, port) in self._handoff_ports.items():
            infra = view.infra(switch_id)
            if not infra.has_port(port):
                infra.add_port(port)
            infra.port(port).sap_tag = tag
        return view

    def _sap_switch(self, sap_id: str) -> str:
        host = self.sap_hosts[sap_id]
        link = host.links["0"]
        peer, _ = link.peer_of(host)
        return peer.id

    def __repr__(self) -> str:
        return (f"<EmulatedDomain {self.name}: {len(self.switches)} switches, "
                f"{len(self.sap_hosts)} SAPs>")
