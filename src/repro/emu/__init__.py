"""Mininet-like emulated domain.

The paper keeps "our Mininet based domain orchestrated by a dedicated
ESCAPEv2 entity via NETCONF and OpenFlow control channels.  Here, the
NFs are run as isolated Click processes."  This package provides:

- :class:`EmulatedDomain` — a topology of NF-hosting switches (BiS-BiS
  nodes) and SAP hosts on the shared packet simulator;
- :class:`EmuDomainOrchestrator` — the domain-local orchestrator: a
  NETCONF server that accepts install-NFFGs, starts/stops Click NFs and
  programs steering flow rules through an internal OpenFlow controller.
"""

from repro.emu.domain import EmulatedDomain
from repro.emu.orchestrator import EmuDomainOrchestrator

__all__ = ["EmulatedDomain", "EmuDomainOrchestrator"]
