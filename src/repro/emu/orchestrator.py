"""Domain-local orchestrator of the emulated domain.

A NETCONF server whose configuration datastore holds the domain's
install-NFFG.  Committing a new configuration reconciles the dataplane:
Click NFs are started/stopped on their BiS-BiS switches and steering
flow rules are (re)programmed through an internal OpenFlow controller —
the "NETCONF and OpenFlow control channels" of the prototype.
"""

from __future__ import annotations

from typing import Any

from repro.click.catalog import NF_CATALOG, make_nf_process
from repro.emu.domain import EmulatedDomain
from repro.infra.flowprog import program_infra_flows
from repro.netconf.messages import UNIFY_CAPABILITY
from repro.netconf.server import NetconfServer
from repro.nffg.graph import NFFG
from repro.nffg.serialize import nffg_from_dict, nffg_to_dict
from repro.openflow.controller import ControllerEndpoint


class EmuDomainOrchestrator(NetconfServer):
    """NETCONF-managed local orchestrator for :class:`EmulatedDomain`."""

    def __init__(self, domain: EmulatedDomain):
        super().__init__(f"{domain.name}-orchestrator",
                         capabilities=[UNIFY_CAPABILITY])
        self.domain = domain
        self.controller = ControllerEndpoint(
            f"{domain.name}-ctl", simulator=domain.network.simulator)
        for switch in domain.switches.values():
            self.controller.connect_switch(switch)
        #: nf_id -> (switch id, functional type)
        self._deployed_nfs: dict[str, tuple[str, str]] = {}
        self.deploy_count = 0
        self.on_apply(self._apply_config)
        self.register_rpc("get-topology",
                          lambda params: nffg_to_dict(self.domain.domain_view()))
        self.register_rpc("get-nf-status", self._rpc_nf_status)

    # -- NETCONF integration -------------------------------------------------

    def validate_config(self, config: Any) -> list[str]:
        if config is None:
            return []
        try:
            install = nffg_from_dict(config["nffg"])
        except Exception as exc:  # noqa: BLE001 - report, don't crash session
            return [f"config is not a valid NFFG: {exc}"]
        problems = install.validate()
        for infra in install.infras:
            if infra.id not in self.domain.switches:
                problems.append(f"unknown switch {infra.id!r}")
        for nf in install.nfs:
            if nf.functional_type not in NF_CATALOG:
                problems.append(
                    f"NF type {nf.functional_type!r} not deployable here")
        return problems

    def state_data(self) -> dict[str, Any]:
        return {
            "deployed_nfs": {nf_id: host
                             for nf_id, (host, _) in self._deployed_nfs.items()},
            "flow_mods_sent": self.controller.flow_mods_sent,
            "deploys": self.deploy_count,
        }

    def _rpc_nf_status(self, params: dict) -> dict[str, Any]:
        nf_id = params.get("id", "")
        record = self._deployed_nfs.get(nf_id)
        if record is None:
            return {"id": nf_id, "status": "absent"}
        switch_id, _ = record
        process = self.domain.switches[switch_id].nf_process(nf_id)
        return {"id": nf_id, "status": "running" if process else "absent",
                "host": switch_id,
                "stats": process.stats() if process else {}}

    # -- reconciliation ------------------------------------------------------------

    def _apply_config(self, config: Any) -> None:
        if config is None:
            self._teardown_all()
            return
        install = nffg_from_dict(config["nffg"])
        self.deploy_count += 1
        self._reconcile_nfs(install)
        self._reprogram_flows(install)
        self.notify("deploy-finished", {"nffg": install.id,
                                        "nfs": sorted(self._deployed_nfs)})

    def _reconcile_nfs(self, install: NFFG) -> None:
        wanted: dict[str, tuple[str, str]] = {}
        for nf in install.nfs:
            host = install.host_of(nf.id)
            if host is not None:
                wanted[nf.id] = (host, nf.functional_type)
        for nf_id, (switch_id, functional_type) in list(
                self._deployed_nfs.items()):
            if wanted.get(nf_id) != (switch_id, functional_type):
                self.domain.switches[switch_id].detach_nf(nf_id)
                del self._deployed_nfs[nf_id]
                self.notify("vnf-stopped", {"id": nf_id})
        for nf_id, (switch_id, functional_type) in wanted.items():
            if nf_id in self._deployed_nfs:
                continue
            nf = install.nf(nf_id)
            process = make_nf_process(nf_id, functional_type)
            switch = self.domain.switches[switch_id]
            nf_ports = sorted(int(p) for p in nf.ports) or [1, 2]
            switch.attach_nf(nf_id, process, nf_ports=nf_ports)
            self._deployed_nfs[nf_id] = (switch_id, functional_type)
            self.notify("vnf-started", {"id": nf_id, "host": switch_id})

    def _reprogram_flows(self, install: NFFG) -> None:
        for infra in install.infras:
            dpid = infra.id
            self.controller.delete_flows(dpid)
            program_infra_flows(self.controller, dpid, infra)
            self.controller.barrier(dpid)

    def _teardown_all(self) -> None:
        for nf_id, (switch_id, _) in list(self._deployed_nfs.items()):
            self.domain.switches[switch_id].detach_nf(nf_id)
        self._deployed_nfs.clear()
        for dpid in self.domain.switches:
            self.controller.delete_flows(dpid)

    # -- direct access (used by the adapter when co-located) ---------------------------

    def current_view(self) -> NFFG:
        return self.domain.domain_view()

    def deployed_nf_count(self) -> int:
        return len(self._deployed_nfs)
