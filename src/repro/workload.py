"""Workload generation: seeded streams of tenant service requests.

Benchmarks and capacity studies need realistic request mixes.  This
module generates them reproducibly: chain templates drawn from the
paper's demo NFs (plus the abstract decomposable types), request sizes,
bandwidth/delay SLAs, and an optional arrival/holding-time process for
churn experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from repro.nffg.builder import NFFGBuilder
from repro.nffg.graph import NFFG
from repro.sim.random import SeededRandom


@dataclass(frozen=True)
class ChainTemplate:
    """A parameterized chain shape."""

    name: str
    nf_types: tuple[str, ...]
    bandwidth_range: tuple[float, float] = (1.0, 10.0)
    max_delay_range: Optional[tuple[float, float]] = None
    weight: float = 1.0


#: the demo-flavoured default mix: vCPE-ish access chains, inspection
#: chains, media, and abstract decomposable tenants
DEFAULT_TEMPLATES: tuple[ChainTemplate, ...] = (
    ChainTemplate("access", ("firewall", "nat"), (2.0, 20.0),
                  (40.0, 120.0), weight=3.0),
    ChainTemplate("inspection", ("firewall", "dpi"), (1.0, 10.0),
                  (60.0, 200.0), weight=2.0),
    ChainTemplate("media", ("transcoder",), (5.0, 50.0), None,
                  weight=1.0),
    ChainTemplate("monitoring", ("monitor",), (0.5, 2.0), None,
                  weight=1.0),
    ChainTemplate("abstract-cpe", ("vCPE",), (2.0, 10.0),
                  (50.0, 150.0), weight=2.0),
)


@dataclass
class GeneratedRequest:
    """One tenant request with its lifecycle parameters."""

    service: NFFG
    template: str
    arrival_ms: float = 0.0
    holding_ms: float = float("inf")
    index: int = 0


class WorkloadGenerator:
    """Reproducible stream of tenant requests.

    >>> gen = WorkloadGenerator(seed=1, sap_ids=("sap1", "sap2"))
    >>> reqs = gen.batch(5)
    >>> len(reqs)
    5
    >>> reqs2 = WorkloadGenerator(seed=1, sap_ids=("sap1", "sap2")).batch(5)
    >>> [r.template for r in reqs] == [r.template for r in reqs2]
    True
    """

    def __init__(self, seed: int = 0, *,
                 sap_ids: Sequence[str] = ("sap1", "sap2"),
                 templates: Sequence[ChainTemplate] = DEFAULT_TEMPLATES,
                 id_prefix: str = "tenant",
                 distinct_flowclasses: bool = True):
        self.rng = SeededRandom(seed)
        self.sap_ids = list(sap_ids)
        if len(self.sap_ids) < 2:
            raise ValueError("need at least two SAPs")
        self.templates = list(templates)
        self.id_prefix = id_prefix
        self.distinct_flowclasses = distinct_flowclasses
        self._counter = 0

    # -- single request ----------------------------------------------------

    def next_request(self) -> GeneratedRequest:
        self._counter += 1
        index = self._counter
        template = self.rng.weighted_choice(
            [(template, template.weight) for template in self.templates])
        request_id = f"{self.id_prefix}{index}"
        src, dst = self.rng.sample(self.sap_ids, 2)
        builder = NFFGBuilder(request_id).sap(src).sap(dst)
        names = []
        for position, nf_type in enumerate(template.nf_types):
            name = f"{request_id}-nf{position}"
            builder.nf(name, nf_type)
            names.append(name)
        bandwidth = self.rng.uniform(*template.bandwidth_range)
        flowclass = (f"tp_dst={10000 + index}"
                     if self.distinct_flowclasses else "")
        builder.chain(src, *names, dst, bandwidth=bandwidth,
                      flowclass=flowclass)
        if template.max_delay_range is not None:
            builder.requirement(
                src, dst,
                max_delay=self.rng.uniform(*template.max_delay_range))
        return GeneratedRequest(service=builder.build(),
                                template=template.name, index=index)

    # -- batches and processes -----------------------------------------------

    def batch(self, count: int) -> list[GeneratedRequest]:
        return [self.next_request() for _ in range(count)]

    def poisson_arrivals(self, count: int, *, rate_per_s: float = 1.0,
                         mean_holding_s: float = 60.0
                         ) -> list[GeneratedRequest]:
        """Requests with exponential inter-arrival and holding times
        (times in virtual milliseconds)."""
        now_ms = 0.0
        requests = []
        for _ in range(count):
            now_ms += self.rng.expovariate(rate_per_s) * 1000.0
            request = self.next_request()
            request.arrival_ms = now_ms
            request.holding_ms = self.rng.expovariate(
                1.0 / mean_holding_s) * 1000.0
            requests.append(request)
        return requests

    def stream(self) -> Iterator[GeneratedRequest]:
        while True:
            yield self.next_request()
