"""Catalog of deployable NF implementations.

Maps NFFG ``functional_type`` strings to Click configs (and default
resource footprints), so every domain that executes NFs — the emulated
Mininet-like domain, the Universal Node containers, the cloud VMs — can
instantiate a working packet processor for a requested NF type.
Domains advertise ``supported_types`` from this catalog.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.click.process import ClickProcess, compile_config
from repro.nffg.model import ResourceVector


@dataclass(frozen=True)
class NFImplementation:
    functional_type: str
    click_config: str
    default_resources: ResourceVector
    processing_delay_ms: float = 0.05
    description: str = ""


NF_CATALOG: dict[str, NFImplementation] = {}


def register_nf(impl: NFImplementation) -> None:
    NF_CATALOG[impl.functional_type] = impl


def _bootstrap_catalog() -> None:
    register_nf(NFImplementation(
        "forwarder",
        "FromPort(0) -> Counter() -> ToPort(1)",
        ResourceVector(cpu=0.5, mem=64.0, storage=1.0),
        description="transparent L2 forwarder (no-op NF)"))
    register_nf(NFImplementation(
        "firewall",
        "FromPort(0) -> FirewallFilter(deny tp_dst=22, deny tp_dst=23) -> ToPort(1)",
        ResourceVector(cpu=1.0, mem=128.0, storage=1.0),
        description="stateless firewall dropping ssh/telnet"))
    register_nf(NFImplementation(
        "nat",
        "FromPort(0) -> NATRewriter(192.0.2.1) -> ToPort(1)",
        ResourceVector(cpu=1.0, mem=128.0, storage=1.0),
        description="source NAT to a public address"))
    register_nf(NFImplementation(
        "fw-nat-combo",
        "FromPort(0) -> FirewallFilter(deny tp_dst=22) -> "
        "NATRewriter(192.0.2.1) -> ToPort(1)",
        ResourceVector(cpu=1.5, mem=192.0, storage=2.0),
        processing_delay_ms=0.08,
        description="consolidated firewall + NAT (vCPE decomposition)"))
    register_nf(NFImplementation(
        "dpi",
        "in :: FromPort(0); d :: DPIElement(malware|exploit); "
        "out :: ToPort(1); drop :: Discard(); "
        "in -> d; d[0] -> out; d[1] -> [0]drop",
        ResourceVector(cpu=2.0, mem=512.0, storage=4.0),
        processing_delay_ms=0.2,
        description="deep packet inspection dropping flagged payloads"))
    register_nf(NFImplementation(
        "classifier",
        "in :: FromPort(0); c :: Classifier(tp_dst=80|tp_dst=443); "
        "out :: ToPort(1); "
        "in -> c; c[0] -> out; c[1] -> [0]out; c[2] -> [0]out",
        ResourceVector(cpu=0.5, mem=64.0, storage=1.0),
        description="traffic classifier (all classes re-merged)"))
    register_nf(NFImplementation(
        "analyzer",
        "FromPort(0) -> DPIElement(exploit) -> ToPort(1)",
        ResourceVector(cpu=2.0, mem=512.0, storage=4.0),
        processing_delay_ms=0.3,
        description="payload analyzer stage of the DPI pipeline"))
    register_nf(NFImplementation(
        "loadbalancer",
        "FromPort(0) -> Counter() -> ToPort(1)",
        ResourceVector(cpu=1.0, mem=128.0, storage=1.0),
        description="round-robin LB front (single backend in emulation)"))
    register_nf(NFImplementation(
        "webserver",
        "FromPort(0) -> PayloadRewriter(GET|RESP) -> ToPort(1)",
        ResourceVector(cpu=2.0, mem=1024.0, storage=8.0),
        description="toy web server echoing rewritten payloads"))
    register_nf(NFImplementation(
        "transcoder",
        "FromPort(0) -> PayloadRewriter(h264|vp9) -> ToPort(1)",
        ResourceVector(cpu=4.0, mem=2048.0, storage=16.0),
        processing_delay_ms=0.5,
        description="media transcoder (payload rewriter stand-in)"))
    register_nf(NFImplementation(
        "monitor",
        "FromPort(0) -> LatencyProbe() -> Counter() -> ToPort(1)",
        ResourceVector(cpu=0.5, mem=64.0, storage=2.0),
        description="passive latency/throughput monitor"))
    register_nf(NFImplementation(
        "ratelimiter",
        "FromPort(0) -> RateLimiter(5 10) -> ToPort(1)",
        ResourceVector(cpu=0.5, mem=64.0, storage=1.0),
        description="token-bucket rate limiter"))


_bootstrap_catalog()


def click_config_for(functional_type: str) -> str:
    impl = NF_CATALOG.get(functional_type)
    if impl is None:
        raise KeyError(f"no NF implementation for type {functional_type!r}")
    return impl.click_config


def make_nf_process(nf_id: str, functional_type: str) -> ClickProcess:
    """Instantiate a runnable Click process for an NF type."""
    impl = NF_CATALOG.get(functional_type)
    if impl is None:
        raise KeyError(f"no NF implementation for type {functional_type!r}")
    return compile_config(nf_id, impl.click_config,
                          processing_delay_ms=impl.processing_delay_ms)


def supported_functional_types() -> list[str]:
    return sorted(NF_CATALOG)
