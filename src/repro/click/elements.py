"""Click-style packet processing elements.

Each element has numbered output gates; :meth:`Element.push` consumes a
packet on an input gate and returns ``(out_gate, packet)`` pairs.  The
element set covers the NFs the UNIFY demos chain: firewall, NAT, DPI,
counters, rate limiting, VLAN manipulation.
"""

from __future__ import annotations

import abc
from typing import Iterable, Optional

from repro.netem.packet import Packet

Emission = list[tuple[int, Packet]]


class Element(abc.ABC):
    """One processing element with numbered input/output gates."""

    def __init__(self, name: str):
        self.name = name
        self.packets_in = 0
        self.packets_out = 0

    @abc.abstractmethod
    def process(self, packet: Packet, in_gate: int) -> Emission:
        """Transform a packet; return (out_gate, packet) emissions."""

    def push(self, packet: Packet, in_gate: int = 0) -> Emission:
        self.packets_in += 1
        emissions = self.process(packet, in_gate)
        self.packets_out += len(emissions)
        return emissions

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class FromPort(Element):
    """Ingress anchor: external port N enters the element graph here."""

    def __init__(self, name: str, port: int = 0):
        super().__init__(name)
        self.port = port

    def process(self, packet: Packet, in_gate: int) -> Emission:
        return [(0, packet)]


class ToPort(Element):
    """Egress anchor: emissions reaching this element leave on external
    port N.  The hosting process collects them."""

    def __init__(self, name: str, port: int = 1):
        super().__init__(name)
        self.port = port
        self.emitted: list[Packet] = []

    def process(self, packet: Packet, in_gate: int) -> Emission:
        self.emitted.append(packet)
        return []


class Discard(Element):
    """Drop everything (and count it)."""

    def __init__(self, name: str):
        super().__init__(name)
        self.dropped = 0

    def process(self, packet: Packet, in_gate: int) -> Emission:
        self.dropped += 1
        return []


class Counter(Element):
    """Pass-through byte/packet counter."""

    def __init__(self, name: str):
        super().__init__(name)
        self.count = 0
        self.bytes = 0

    def process(self, packet: Packet, in_gate: int) -> Emission:
        self.count += 1
        self.bytes += packet.size_bytes
        return [(0, packet)]


class Classifier(Element):
    """Send packets matching flowclass specs to dedicated gates.

    ``specs`` is an ordered list of flowclass strings; the first match
    wins and the packet leaves on that spec's gate index.  Non-matching
    packets leave on the gate after the last spec (default path).
    """

    def __init__(self, name: str, specs: Iterable[str]):
        super().__init__(name)
        self.specs = list(specs)

    def process(self, packet: Packet, in_gate: int) -> Emission:
        for index, spec in enumerate(self.specs):
            if packet.matches_flowclass(spec):
                return [(index, packet)]
        return [(len(self.specs), packet)]


class FirewallFilter(Element):
    """Stateless 5-tuple firewall.

    ``rules``: ordered ``("allow"|"deny", flowclass)`` pairs; the first
    matching rule decides, default policy applies otherwise.  Denied
    packets are dropped (gate-less).
    """

    def __init__(self, name: str, rules: Iterable[tuple[str, str]] = (),
                 default: str = "allow"):
        super().__init__(name)
        self.rules = [(verdict.lower(), spec) for verdict, spec in rules]
        self.default = default.lower()
        self.denied = 0

    def process(self, packet: Packet, in_gate: int) -> Emission:
        verdict = self.default
        for rule_verdict, spec in self.rules:
            if packet.matches_flowclass(spec):
                verdict = rule_verdict
                break
        if verdict == "deny":
            self.denied += 1
            packet.metadata.setdefault("fw_denied_by", self.name)
            return []
        packet.metadata.setdefault("fw_passed", []).append(self.name)
        return [(0, packet)]


class NATRewriter(Element):
    """Source NAT: rewrite ip_src to the public address, remember the
    mapping, and reverse-translate replies arriving on gate 1."""

    def __init__(self, name: str, public_ip: str = "192.0.2.1"):
        super().__init__(name)
        self.public_ip = public_ip
        self._sessions: dict[tuple, str] = {}

    def process(self, packet: Packet, in_gate: int) -> Emission:
        if in_gate == 0:  # inside -> outside
            key = (packet.ip_dst, packet.ip_proto, packet.tp_src, packet.tp_dst)
            self._sessions[key] = packet.ip_src
            packet.metadata["nat_original_src"] = packet.ip_src
            packet.ip_src = self.public_ip
            packet.metadata.setdefault("nat_by", self.name)
            return [(0, packet)]
        # outside -> inside: reverse translation
        key = (packet.ip_src, packet.ip_proto, packet.tp_dst, packet.tp_src)
        original = self._sessions.get(key)
        if original is None:
            return []
        packet.ip_dst = original
        return [(1, packet)]


class DPIElement(Element):
    """Payload inspection: tag packets whose payload matches signatures."""

    def __init__(self, name: str, signatures: Iterable[str] = ("malware",)):
        super().__init__(name)
        self.signatures = list(signatures)
        self.flagged = 0

    def process(self, packet: Packet, in_gate: int) -> Emission:
        hits = [sig for sig in self.signatures if sig in packet.payload]
        if hits:
            self.flagged += 1
            packet.metadata["dpi_flags"] = hits
            return [(1, packet)]
        packet.metadata.setdefault("dpi_clean_by", self.name)
        return [(0, packet)]


class RateLimiter(Element):
    """Token-bucket limiter on packet count per virtual ms."""

    def __init__(self, name: str, rate_pps_ms: float = 10.0,
                 burst: float = 20.0):
        super().__init__(name)
        self.rate = rate_pps_ms
        self.burst = burst
        self._tokens = burst
        self._last_time: Optional[float] = None
        self.dropped = 0

    def observe_time(self, now: float) -> None:
        if self._last_time is None:
            self._last_time = now
            return
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last_time) * self.rate)
        self._last_time = now

    def process(self, packet: Packet, in_gate: int) -> Emission:
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return [(0, packet)]
        self.dropped += 1
        return []


class Tee(Element):
    """Duplicate packets to N gates (mirror port)."""

    def __init__(self, name: str, outputs: int = 2):
        super().__init__(name)
        self.outputs = outputs

    def process(self, packet: Packet, in_gate: int) -> Emission:
        return [(gate, packet if gate == 0 else packet.copy())
                for gate in range(self.outputs)]


class VlanTagger(Element):
    def __init__(self, name: str, tag: int):
        super().__init__(name)
        self.tag = tag

    def process(self, packet: Packet, in_gate: int) -> Emission:
        packet.vlan = self.tag
        return [(0, packet)]


class VlanUntagger(Element):
    def __init__(self, name: str):
        super().__init__(name)

    def process(self, packet: Packet, in_gate: int) -> Emission:
        packet.vlan = None
        return [(0, packet)]


class PayloadRewriter(Element):
    """Substring replace in payloads (demo 'transcoder')."""

    def __init__(self, name: str, old: str, new: str):
        super().__init__(name)
        self.old, self.new = old, new

    def process(self, packet: Packet, in_gate: int) -> Emission:
        if self.old in packet.payload:
            packet.payload = packet.payload.replace(self.old, self.new)
            packet.metadata.setdefault("rewritten_by", self.name)
        return [(0, packet)]


class LatencyProbe(Element):
    """Record per-packet sojourn time (now - created_at) for telemetry."""

    def __init__(self, name: str):
        super().__init__(name)
        self.samples: list[float] = []
        self._now = 0.0

    def observe_time(self, now: float) -> None:
        self._now = now

    def process(self, packet: Packet, in_gate: int) -> Emission:
        self.samples.append(self._now - packet.created_at)
        return [(0, packet)]
