"""Click-style modular NF execution.

The paper's Mininet-based domain runs NFs "as isolated Click
processes".  This package reproduces the Click programming model at the
granularity the control plane cares about: NFs are graphs of packet
processing *elements* compiled from a textual config, pushed packets
flow element-to-element, and each NF exposes numbered external ports so
a BiS-BiS can steer traffic through it.
"""

from repro.click.elements import (
    Classifier,
    Counter,
    DPIElement,
    Discard,
    Element,
    FirewallFilter,
    FromPort,
    LatencyProbe,
    NATRewriter,
    PayloadRewriter,
    RateLimiter,
    Tee,
    ToPort,
    VlanTagger,
    VlanUntagger,
)
from repro.click.process import ClickConfigError, ClickProcess, compile_config
from repro.click.catalog import NF_CATALOG, click_config_for, make_nf_process

__all__ = [
    "Element",
    "FromPort",
    "ToPort",
    "Classifier",
    "Counter",
    "Discard",
    "DPIElement",
    "FirewallFilter",
    "LatencyProbe",
    "NATRewriter",
    "PayloadRewriter",
    "RateLimiter",
    "Tee",
    "VlanTagger",
    "VlanUntagger",
    "ClickProcess",
    "ClickConfigError",
    "compile_config",
    "NF_CATALOG",
    "click_config_for",
    "make_nf_process",
]
