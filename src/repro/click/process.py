"""Click process: an element graph compiled from a textual config.

The config syntax is a pragmatic subset of Click's::

    in0 :: FromPort(0);
    fw  :: FirewallFilter(deny tp_dst=22, allow );
    out :: ToPort(1);
    in0[0] -> [0]fw;
    fw[0] -> [0]out;

Shorthand chains are also accepted::

    FromPort(0) -> FirewallFilter(deny tp_dst=22) -> ToPort(1)

Pushing a packet into an external port runs it through the graph
synchronously; emissions reaching ``ToPort`` elements are collected and
handed back to the host (which forwards them on the wire with the NF's
processing delay applied).
"""

from __future__ import annotations

import re
from typing import Callable

from repro.click.elements import (
    Classifier,
    Counter,
    DPIElement,
    Discard,
    Element,
    FirewallFilter,
    FromPort,
    LatencyProbe,
    NATRewriter,
    PayloadRewriter,
    RateLimiter,
    Tee,
    ToPort,
    VlanTagger,
    VlanUntagger,
)
from repro.netem.packet import Packet


class ClickConfigError(ValueError):
    """Raised on unparsable configs or invalid wiring."""


_ELEMENT_FACTORIES: dict[str, Callable[..., Element]] = {}


def register_element(type_name: str, factory: Callable[..., Element]) -> None:
    """Make an element type available to configs (plug-and-play NFs)."""
    _ELEMENT_FACTORIES[type_name] = factory


def _register_builtins() -> None:
    register_element("FromPort", lambda name, args: FromPort(name, int(args or 0)))
    register_element("ToPort", lambda name, args: ToPort(name, int(args or 1)))
    register_element("Counter", lambda name, args: Counter(name))
    register_element("Discard", lambda name, args: Discard(name))
    register_element("Tee", lambda name, args: Tee(name, int(args or 2)))
    register_element("VlanTagger", lambda name, args: VlanTagger(name, int(args)))
    register_element("VlanUntagger", lambda name, args: VlanUntagger(name))
    register_element("LatencyProbe", lambda name, args: LatencyProbe(name))
    register_element("RateLimiter", lambda name, args: RateLimiter(
        name, *(float(a) for a in args.split() if a)) if args else RateLimiter(name))
    register_element("Classifier", lambda name, args: Classifier(
        name, [spec.strip() for spec in args.split("|") if spec.strip()]))
    register_element("DPIElement", lambda name, args: DPIElement(
        name, [sig.strip() for sig in args.split("|")] if args else ("malware",)))
    register_element("NATRewriter", lambda name, args: NATRewriter(
        name, args.strip() or "192.0.2.1"))
    register_element("PayloadRewriter", lambda name, args: PayloadRewriter(
        name, *(token for token in args.split("|"))))
    register_element("FirewallFilter", _firewall_factory)


def _firewall_factory(name: str, args: str) -> FirewallFilter:
    rules: list[tuple[str, str]] = []
    default = "allow"
    for clause in args.split(","):
        clause = clause.strip()
        if not clause:
            continue
        verdict, _, spec = clause.partition(" ")
        verdict = verdict.lower()
        if verdict not in ("allow", "deny", "default"):
            raise ClickConfigError(f"firewall {name!r}: bad verdict {verdict!r}")
        if verdict == "default":
            default = spec.strip() or "allow"
        else:
            rules.append((verdict, spec.strip()))
    return FirewallFilter(name, rules, default=default)


_register_builtins()

_DECL_RE = re.compile(r"^(?P<name>\w+)\s*::\s*(?P<type>\w+)\((?P<args>.*)\)$")
_INLINE_RE = re.compile(r"^(?P<type>\w+)\((?P<args>.*)\)$")
_WIRE_RE = re.compile(
    r"^(?P<src>\w+)(\[(?P<src_gate>\d+)\])?\s*->\s*(\[(?P<dst_gate>\d+)\])?(?P<dst>\w+)$")


class ClickProcess:
    """An instantiated element graph with external numbered ports."""

    def __init__(self, name: str, processing_delay_ms: float = 0.05):
        self.name = name
        self.processing_delay_ms = processing_delay_ms
        self.elements: dict[str, Element] = {}
        #: (element_name, out_gate) -> (element_name, in_gate)
        self.wires: dict[tuple[str, int], tuple[str, int]] = {}
        self._ingress: dict[int, str] = {}
        self.running = True

    # -- construction ------------------------------------------------------

    def add_element(self, element: Element) -> Element:
        if element.name in self.elements:
            raise ClickConfigError(f"duplicate element {element.name!r}")
        self.elements[element.name] = element
        if isinstance(element, FromPort):
            if element.port in self._ingress:
                raise ClickConfigError(f"duplicate FromPort({element.port})")
            self._ingress[element.port] = element.name
        return element

    def wire(self, src: str, src_gate: int, dst: str, dst_gate: int = 0) -> None:
        if src not in self.elements or dst not in self.elements:
            raise ClickConfigError(f"wire references unknown element "
                                   f"{src!r} or {dst!r}")
        key = (src, src_gate)
        if key in self.wires:
            raise ClickConfigError(f"gate {src}[{src_gate}] already wired")
        self.wires[key] = (dst, dst_gate)

    # -- execution -----------------------------------------------------------

    def push(self, packet: Packet, external_port: int = 0,
             now: float = 0.0) -> list[tuple[int, Packet]]:
        """Run a packet through the graph; returns (out_port, packet)."""
        if not self.running:
            return []
        entry = self._ingress.get(external_port)
        if entry is None:
            return []
        packet.record(f"nf:{self.name}")
        outputs: list[tuple[int, Packet]] = []
        queue: list[tuple[str, int, Packet]] = [(entry, 0, packet)]
        hops = 0
        while queue:
            hops += 1
            if hops > 10_000:
                raise ClickConfigError(f"element loop in {self.name!r}")
            element_name, in_gate, current = queue.pop(0)
            element = self.elements[element_name]
            if hasattr(element, "observe_time"):
                element.observe_time(now)
            for out_gate, emitted in element.push(current, in_gate):
                if isinstance(element, ToPort):
                    continue
                target = self.wires.get((element_name, out_gate))
                if target is None:
                    continue  # unwired gate = drop
                next_name, next_gate = target
                next_element = self.elements[next_name]
                if isinstance(next_element, ToPort):
                    next_element.emitted.append(emitted)
                    outputs.append((next_element.port, emitted))
                else:
                    queue.append((next_name, next_gate, emitted))
        return outputs

    def stop(self) -> None:
        self.running = False

    def stats(self) -> dict[str, dict[str, int]]:
        return {name: {"in": el.packets_in, "out": el.packets_out}
                for name, el in self.elements.items()}

    def __repr__(self) -> str:
        return f"<ClickProcess {self.name}: {len(self.elements)} elements>"


def compile_config(name: str, config: str,
                   processing_delay_ms: float = 0.05) -> ClickProcess:
    """Compile a textual config into a :class:`ClickProcess`."""
    process = ClickProcess(name, processing_delay_ms=processing_delay_ms)
    statements = [stmt.strip() for stmt in config.replace("\n", ";").split(";")
                  if stmt.strip()]
    anon_seq = 0
    for statement in statements:
        decl = _DECL_RE.match(statement)
        if decl is not None:
            _instantiate(process, decl.group("name"), decl.group("type"),
                         decl.group("args"))
            continue
        if "->" in statement:
            segments = [seg.strip() for seg in statement.split("->")]
            resolved: list[str] = []
            gates: list[tuple[int, int]] = []
            previous_out = 0
            for segment in segments:
                out_gate = previous_out
                in_gate = 0
                gate_prefix = re.match(r"^\[(\d+)\](.*)$", segment)
                if gate_prefix:
                    in_gate = int(gate_prefix.group(1))
                    segment = gate_prefix.group(2).strip()
                gate_suffix = re.match(r"^(.*?)\[(\d+)\]$", segment)
                if gate_suffix and not segment.endswith(")"):
                    segment = gate_suffix.group(1).strip()
                    previous_out = int(gate_suffix.group(2))
                else:
                    previous_out = 0
                inline = _INLINE_RE.match(segment)
                if inline is not None:
                    anon_seq += 1
                    auto_name = f"_{inline.group('type').lower()}{anon_seq}"
                    _instantiate(process, auto_name, inline.group("type"),
                                 inline.group("args"))
                    segment = auto_name
                if segment not in process.elements:
                    raise ClickConfigError(
                        f"unknown element {segment!r} in {statement!r}")
                resolved.append(segment)
                gates.append((out_gate, in_gate))
            for index in range(len(resolved) - 1):
                src = resolved[index]
                dst = resolved[index + 1]
                out_gate = gates[index + 1][0]
                in_gate = gates[index + 1][1]
                process.wire(src, out_gate, dst, in_gate)
            continue
        raise ClickConfigError(f"unparsable statement {statement!r}")
    if not process._ingress:
        raise ClickConfigError(f"config for {name!r} has no FromPort")
    return process


def _instantiate(process: ClickProcess, name: str, type_name: str,
                 args: str) -> None:
    factory = _ELEMENT_FACTORIES.get(type_name)
    if factory is None:
        raise ClickConfigError(f"unknown element type {type_name!r}")
    try:
        process.add_element(factory(name, args.strip()))
    except ClickConfigError:
        raise
    except Exception as exc:
        raise ClickConfigError(
            f"cannot instantiate {type_name}({args!r}): {exc}") from exc
