"""Install-config codec: NETCONF config payloads as YANG data trees.

Domain adapters push ``{"nffg": nffg_to_dict(...)}`` payloads.  To diff
two such payloads with :func:`repro.yang.diff.diff_trees` we mirror the
payload onto a tiny YANG-like schema:

- ``id`` / ``name`` / ``version`` become string leaves,
- ``metadata`` becomes one leaf holding canonical JSON,
- the ``nodes`` / ``edges`` arrays become *keyed lists*: an edge
  instance holds the member dict as one canonical-JSON ``body`` leaf; a
  node instance splits into an ``attrs`` leaf (the port-free remainder
  of the node dict), a nested ``port`` list keyed by port id, and each
  port into its own ``attrs`` leaf plus a ``flowrule`` list keyed by
  hop id.

Keying the lists is what makes deltas small: an unchanged node or edge
compares equal through its canonical JSON leaves and contributes
nothing to the edit script, while additions/removals become CREATE and
DELETE entries addressed by key.  Splitting ports (and their flow
rules) out of the node body is what makes deltas proportional to the
*change* rather than to the accumulated state: installing one flow rule
on a transit switch ships one flowrule entry, not the switch's whole
flowtable grown by every service deployed so far.  The nffg <->
virtualizer translation is deliberately *not* used here — it is lossy,
and the delta path must reconstruct the exact ``{"nffg": ...}`` dict
the domain orchestrators parse.

Because list instances are keyed, reconstructing a config from a tree
yields nodes/edges/ports in canonical (key-sorted) order rather than
graph insertion order.  Equality across push modes is therefore defined
over :func:`canonical_config` / :func:`config_digest`, which sort
members the same way on both sides.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.yang.data import DataNode, ValidationError
from repro.yang.schema import Container, Leaf, YangList

__all__ = [
    "install_config_schema",
    "config_to_tree",
    "tree_to_config",
    "canonical_config",
    "config_digest",
]


def _canonical_json(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _build_schema() -> Container:
    return Container("install-config", [
        Leaf("id"),
        Leaf("name"),
        Leaf("version"),
        Leaf("metadata"),
        YangList("node", key="key", children=[
            Leaf("key", mandatory=True),
            Leaf("attrs"),
            YangList("port", key="key", children=[
                Leaf("key", mandatory=True),
                Leaf("attrs"),
                YangList("flowrule", key="key", children=[
                    Leaf("key", mandatory=True),
                    Leaf("body"),
                ]),
            ]),
        ]),
        YangList("edge", key="key", children=[
            Leaf("key", mandatory=True),
            Leaf("body"),
        ]),
    ])


_SCHEMA = _build_schema()


def install_config_schema() -> Container:
    """The shared schema all install-config trees bind to (one instance,
    so :func:`diff_trees` accepts any pair of trees built here)."""
    return _SCHEMA


def _node_key(node: dict[str, Any]) -> str:
    try:
        return str(node["id"])
    except KeyError:
        raise ValidationError(f"config node without id: {node!r}") from None


def _edge_key(edge: dict[str, Any]) -> str:
    # edge ids are only unique per edge type; the type joins the key
    try:
        return f"{edge.get('type', 'STATIC')}|{edge['id']}"
    except KeyError:
        raise ValidationError(f"config edge without id: {edge!r}") from None


def _port_key(port: dict[str, Any]) -> str:
    try:
        return str(port["id"])
    except (TypeError, KeyError):
        raise ValidationError(f"config port without id: {port!r}") from None


def _flowrule_key(flowrule: dict[str, Any]) -> str:
    try:
        return str(flowrule["hop_id"])
    except (TypeError, KeyError):
        raise ValidationError(
            f"config flowrule without hop_id: {flowrule!r}") from None


def _splittable(member: dict[str, Any], field: str, keyer) -> bool:
    """Whether ``member[field]`` can become keyed list instances.  An
    absent/empty/malformed/key-colliding value stays inside ``attrs``
    verbatim so reconstruction is loss-free."""
    items = member.get(field)
    if not (isinstance(items, list) and items
            and all(isinstance(item, dict) for item in items)):
        return False
    try:
        keys = {keyer(item) for item in items}
    except ValidationError:
        return False
    return len(keys) == len(items)


def _splittable_ports(member: dict[str, Any]) -> bool:
    return _splittable(member, "ports", _port_key)


def _splittable_flowrules(port: dict[str, Any]) -> bool:
    return _splittable(port, "flowrules", _flowrule_key)


def config_to_tree(config: dict[str, Any]) -> DataNode:
    """Project an adapter config (``{"nffg": nffg_to_dict(...)}``) onto
    the install-config schema."""
    try:
        nffg = config["nffg"]
    except (TypeError, KeyError):
        raise ValidationError(
            f"install config must be {{'nffg': ...}}-shaped, got {config!r}"
        ) from None
    tree = DataNode(_SCHEMA)
    tree.set_leaf("id", str(nffg.get("id", "")))
    tree.set_leaf("name", str(nffg.get("name", "")))
    tree.set_leaf("version", str(nffg.get("version", "")))
    tree.set_leaf("metadata", _canonical_json(nffg.get("metadata", {})))
    node_holder = tree.list_node("node")
    for member in nffg.get("nodes", []):
        instance = node_holder.add_instance(_node_key(member))
        if _splittable_ports(member):
            attrs = {name: value for name, value in member.items()
                     if name != "ports"}
            port_holder = instance.list_node("port")
            for port in member["ports"]:
                port_instance = port_holder.add_instance(_port_key(port))
                if _splittable_flowrules(port):
                    port_attrs = {name: value for name, value in port.items()
                                  if name != "flowrules"}
                    rule_holder = port_instance.list_node("flowrule")
                    for flowrule in port["flowrules"]:
                        rule_holder.add_instance(_flowrule_key(flowrule)) \
                            .set_leaf("body", _canonical_json(flowrule))
                else:
                    port_attrs = port
                port_instance.set_leaf("attrs", _canonical_json(port_attrs))
        else:
            attrs = member
        instance.set_leaf("attrs", _canonical_json(attrs))
    edge_holder = tree.list_node("edge")
    for member in nffg.get("edges", []):
        edge_holder.add_instance(_edge_key(member)) \
            .set_leaf("body", _canonical_json(member))
    return tree


def tree_to_config(tree: DataNode) -> dict[str, Any]:
    """Rebuild the ``{"nffg": ...}`` config dict from an install-config
    tree.  Nodes, edges and ports come back in canonical (key-sorted)
    order."""

    def port_member(instance: DataNode) -> dict[str, Any]:
        port = json.loads(instance.get("attrs", "null"))
        if instance.has_child("flowrule"):
            holder = instance.child("flowrule")
            flowrules = [json.loads(holder.instance(key).get("body", "null"))
                         for key in sorted(holder.instance_keys())]
            if flowrules:
                port["flowrules"] = flowrules
        return port

    def node_member(instance: DataNode) -> dict[str, Any]:
        member = json.loads(instance.get("attrs", "null"))
        if instance.has_child("port"):
            holder = instance.child("port")
            ports = [port_member(holder.instance(key))
                     for key in sorted(holder.instance_keys())]
            if ports:
                member["ports"] = ports
        return member

    def members(list_name: str) -> list[dict[str, Any]]:
        if not tree.has_child(list_name):
            return []
        holder = tree.child(list_name)
        if list_name == "node":
            return [node_member(holder.instance(key))
                    for key in sorted(holder.instance_keys())]
        return [json.loads(holder.instance(key).get("body", "null"))
                for key in sorted(holder.instance_keys())]

    return {"nffg": {
        "id": tree.get("id", ""),
        "name": tree.get("name", ""),
        "version": tree.get("version", ""),
        "metadata": json.loads(tree.get("metadata", "{}")),
        "nodes": members("node"),
        "edges": members("edge"),
    }}


def canonical_config(config: dict[str, Any]) -> dict[str, Any]:
    """The config with nodes/edges sorted by their list keys, each
    node's ports by port id and each port's flow rules by hop id — the
    mode-independent form both digest and equality checks use."""

    def canonical_port(port: dict[str, Any]) -> dict[str, Any]:
        if not _splittable_flowrules(port):
            return port
        canonical = dict(port)
        canonical["flowrules"] = sorted(port["flowrules"], key=_flowrule_key)
        return canonical

    def canonical_node(member: dict[str, Any]) -> dict[str, Any]:
        if not _splittable_ports(member):
            return member
        canonical = dict(member)
        canonical["ports"] = sorted(
            (canonical_port(port) for port in member["ports"]),
            key=_port_key)
        return canonical

    nffg = config.get("nffg") if isinstance(config, dict) else None
    if not isinstance(nffg, dict):
        return config
    canonical = dict(nffg)
    canonical["nodes"] = sorted(
        (canonical_node(member) for member in nffg.get("nodes", [])),
        key=_node_key)
    canonical["edges"] = sorted(nffg.get("edges", []), key=_edge_key)
    result = dict(config)
    result["nffg"] = canonical
    return result


def config_digest(config: dict[str, Any]) -> str:
    """Short hex digest over the canonical JSON form of ``config``.

    Both ends derive it locally: the client stamps its last acknowledged
    config, the server its running config.  A delta push carries the
    client's digest as the expected base; any drift (restart, missed
    commit, concurrent writer) surfaces as a mismatch and forces a full
    resync instead of silently corrupting domain state.
    """
    payload = _canonical_json(canonical_config(config))
    return hashlib.sha256(payload.encode()).hexdigest()[:16]
