"""A minimal YANG-like modelling engine.

The paper: "The data model of the virtualizer is defined in Yang."
This package provides the subset needed to express that model and to
exchange it over the Unify/NETCONF interfaces:

- schema trees (:class:`Container`, :class:`YangList`, :class:`Leaf`)
  with types, mandatory flags and defaults;
- data trees validated against a schema;
- deterministic serialization (dict/JSON and a compact XML-ish text);
- structural *diff* and *patch*, because the Unify interface exchanges
  configuration deltas rather than full trees.
"""

from repro.yang.schema import (
    Container,
    Leaf,
    LeafType,
    SchemaError,
    YangList,
)
from repro.yang.data import DataNode, ValidationError, data_from_dict
from repro.yang.diff import DiffEntry, DiffOp, apply_patch, diff_trees
from repro.yang.config import (
    canonical_config,
    config_digest,
    config_to_tree,
    install_config_schema,
    tree_to_config,
)

__all__ = [
    "Container",
    "Leaf",
    "LeafType",
    "SchemaError",
    "YangList",
    "DataNode",
    "ValidationError",
    "data_from_dict",
    "DiffEntry",
    "DiffOp",
    "apply_patch",
    "diff_trees",
    "canonical_config",
    "config_digest",
    "config_to_tree",
    "install_config_schema",
    "tree_to_config",
]
