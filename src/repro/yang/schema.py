"""Schema-side classes of the YANG-like engine.

A schema is a tree of :class:`Container` / :class:`YangList` /
:class:`Leaf` nodes.  Lists are keyed (like YANG ``list ... key``),
leaves are typed.  The engine supports exactly what the UNIFY
virtualizer model needs; it is not a general YANG compiler.
"""

from __future__ import annotations

import enum
from typing import Any, Iterable, Optional


class SchemaError(ValueError):
    """Raised when a schema definition itself is inconsistent."""


class LeafType(str, enum.Enum):
    STRING = "string"
    INT = "int"
    DECIMAL = "decimal"
    BOOLEAN = "boolean"
    ENUM = "enumeration"


class SchemaNode:
    """Common base for schema nodes."""

    def __init__(self, name: str):
        if not name or "/" in name:
            raise SchemaError(f"invalid schema node name {name!r}")
        self.name = name
        self.parent: Optional["SchemaNode"] = None

    def path(self) -> str:
        parts = []
        node: Optional[SchemaNode] = self
        while node is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.path()}>"


class Leaf(SchemaNode):
    """A typed scalar leaf."""

    def __init__(self, name: str, type: LeafType = LeafType.STRING, *,
                 mandatory: bool = False, default: Any = None,
                 enum_values: Iterable[str] = ()):
        super().__init__(name)
        self.type = type
        self.mandatory = mandatory
        self.default = default
        self.enum_values = set(enum_values)
        if type == LeafType.ENUM and not self.enum_values:
            raise SchemaError(f"enum leaf {name!r} needs enum_values")
        if default is not None:
            self.check_value(default)

    def check_value(self, value: Any) -> Any:
        """Validate and canonicalize ``value``; returns the canonical form."""
        if self.type == LeafType.STRING:
            if not isinstance(value, str):
                raise SchemaError(f"leaf {self.name!r}: expected string, got {value!r}")
            return value
        if self.type == LeafType.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise SchemaError(f"leaf {self.name!r}: expected int, got {value!r}")
            return value
        if self.type == LeafType.DECIMAL:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(f"leaf {self.name!r}: expected number, got {value!r}")
            return float(value)
        if self.type == LeafType.BOOLEAN:
            if not isinstance(value, bool):
                raise SchemaError(f"leaf {self.name!r}: expected bool, got {value!r}")
            return value
        if self.type == LeafType.ENUM:
            if value not in self.enum_values:
                raise SchemaError(
                    f"leaf {self.name!r}: {value!r} not in {sorted(self.enum_values)}")
            return value
        raise SchemaError(f"leaf {self.name!r}: unknown type {self.type}")


class _ParentNode(SchemaNode):
    """Base for schema nodes with children."""

    def __init__(self, name: str, children: Iterable[SchemaNode] = ()):
        super().__init__(name)
        self.children: dict[str, SchemaNode] = {}
        for child in children:
            self.add(child)

    def add(self, child: SchemaNode) -> SchemaNode:
        if child.name in self.children:
            raise SchemaError(f"duplicate child {child.name!r} under {self.path()}")
        child.parent = self
        self.children[child.name] = child
        return child

    def child(self, name: str) -> SchemaNode:
        try:
            return self.children[name]
        except KeyError:
            raise SchemaError(f"no child {name!r} under {self.path()}") from None


class Container(_ParentNode):
    """A YANG ``container``: named grouping of children, at most one
    instance."""

    def __init__(self, name: str, children: Iterable[SchemaNode] = (), *,
                 presence: bool = False):
        super().__init__(name, children)
        #: presence containers are meaningful even when empty
        self.presence = presence


class YangList(_ParentNode):
    """A YANG ``list``: keyed multi-instance node.

    ``key`` must name a mandatory child leaf; instances are addressed as
    ``name[key-value]`` in paths.
    """

    def __init__(self, name: str, key: str, children: Iterable[SchemaNode] = ()):
        super().__init__(name, children)
        self.key = key

    def add(self, child: SchemaNode) -> SchemaNode:
        super().add(child)
        return child

    def validate_key(self) -> None:
        key_node = self.children.get(self.key)
        if not isinstance(key_node, Leaf):
            raise SchemaError(f"list {self.path()}: key {self.key!r} is not a leaf")
