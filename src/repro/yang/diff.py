"""Structural diff and patch for YANG-like data trees.

The Unify interface is diff-based: a manager fetches a view, edits it
locally and sends only the delta.  :func:`diff_trees` produces an
ordered edit script; :func:`apply_patch` replays it on another copy.
Deletes are emitted before creates so that replace-by-key works.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Any

from repro.yang.data import DataNode, ValidationError, _fill_from_dict


class DiffOp(str, enum.Enum):
    SET = "set"          #: set a leaf value (path -> leaf)
    DELETE = "delete"    #: remove a list instance or unset a leaf
    CREATE = "create"    #: create a list instance subtree (value = dict)


@dataclass(frozen=True)
class DiffEntry:
    op: DiffOp
    path: str
    value: Any = None

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op.value, "path": self.path, "value": self.value}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DiffEntry":
        return cls(op=DiffOp(data["op"]), path=data["path"],
                   value=data.get("value"))


def diff_trees(old: DataNode, new: DataNode) -> list[DiffEntry]:
    """Edit script transforming ``old`` into ``new``.

    Both trees must share a schema.  The script touches leaves with SET,
    list instances with CREATE/DELETE; containers are recursed into.
    """
    if old.schema is not new.schema and old.schema.path() != new.schema.path():
        raise ValidationError("cannot diff trees with different schemas")
    entries: list[DiffEntry] = []
    _diff_node(old, new, entries)
    return entries


def _diff_node(old: DataNode, new: DataNode, entries: list[DiffEntry]) -> None:
    if old.is_leaf:
        if old.value != new.value:
            if new.value is None:
                entries.append(DiffEntry(DiffOp.DELETE, new.path()))
            else:
                entries.append(DiffEntry(DiffOp.SET, new.path(), new.value))
        return
    if old.is_list and new.is_list:
        old_keys = set(old.instance_keys())
        new_keys = set(new.instance_keys())
        for key in sorted(old_keys - new_keys):
            # the holder path already ends in the list name; the instance
            # path just appends its key selector
            entries.append(DiffEntry(DiffOp.DELETE, f"{new.path()}[{key}]"))
        for key in sorted(new_keys - old_keys):
            instance = new.instance(key)
            entries.append(DiffEntry(DiffOp.CREATE, instance.path(),
                                     instance.to_dict()))
        for key in sorted(old_keys & new_keys):
            _diff_node(old.instance(key), new.instance(key), entries)
        return
    # container or list instance
    old_children = {child.schema.name: child for child in old.children()}
    new_children = {child.schema.name: child for child in new.children()}
    for name in sorted(set(old_children) - set(new_children)):
        entries.append(DiffEntry(DiffOp.DELETE, f"{old.path()}/{name}"))
    for name in sorted(set(new_children) - set(old_children)):
        child = new_children[name]
        if child.is_leaf:
            entries.append(DiffEntry(DiffOp.SET, child.path(), child.value))
        else:
            _emit_creates(child, entries)
    for name in sorted(set(old_children) & set(new_children)):
        _diff_node(old_children[name], new_children[name], entries)


def _emit_creates(node: DataNode, entries: list[DiffEntry]) -> None:
    """Emit CREATEs for every list instance reachable under a fresh node,
    and SETs for loose leaves under fresh containers."""
    if node.is_leaf:
        if node.value is not None:
            entries.append(DiffEntry(DiffOp.SET, node.path(), node.value))
        return
    if node.is_list:
        for instance in node.instances():
            entries.append(DiffEntry(DiffOp.CREATE, instance.path(),
                                     instance.to_dict()))
        return
    for child in node.children():
        _emit_creates(child, entries)


def apply_patch(tree: DataNode, entries: list[DiffEntry]) -> DataNode:
    """Apply an edit script (in place); returns ``tree`` for chaining."""
    root_name = tree.schema.name
    for entry in entries:
        relative = _strip_root(entry.path, root_name)
        if entry.op == DiffOp.SET:
            parent_path, leaf_name = _split_leaf(relative)
            parent = _resolve_creating(tree, parent_path)
            parent.set_leaf(leaf_name, entry.value)
        elif entry.op == DiffOp.DELETE:
            _apply_delete(tree, relative)
        elif entry.op == DiffOp.CREATE:
            parent_path, instance_token = _split_leaf(relative)
            name, _, rest = instance_token.partition("[")
            key = rest.rstrip("]")
            parent = _resolve_creating(tree, parent_path) if parent_path else tree
            holder = parent.list_node(name)
            if holder.has_instance(key):
                holder.remove_instance(key)
            instance = holder.add_instance(key)
            _fill_from_dict(instance, entry.value)
        else:  # pragma: no cover - enum is exhaustive
            raise ValidationError(f"unknown diff op {entry.op}")
    return tree


def _resolve_creating(tree: DataNode, path: str) -> DataNode:
    """Resolve a path, creating missing *containers* on the way (NETCONF
    merge semantics).  Missing list instances are still errors — they
    must arrive via explicit CREATE entries."""
    from repro.yang.schema import Container

    node = tree
    for token in [t for t in path.strip("/").split("/") if t]:
        if "[" in token:
            name, _, rest = token.partition("[")
            key = rest.rstrip("]")
            node = node.list_node(name).instance(key)
        else:
            child_schema = node._child_schema(token)
            if isinstance(child_schema, Container):
                node = node.container(token)
            else:
                node = node.list_node(token)
    return node


def _apply_delete(tree: DataNode, relative: str) -> None:
    parent_path, token = _split_leaf(relative)
    parent = tree.resolve(parent_path) if parent_path else tree
    if "[" in token:
        name, _, rest = token.partition("[")
        key = rest.rstrip("]")
        parent.list_node(name).remove_instance(key)
    else:
        parent.remove_child(token)


def _strip_root(path: str, root_name: str) -> str:
    path = path.strip("/")
    prefix = root_name
    if path == prefix:
        return ""
    if path.startswith(prefix + "/"):
        return path[len(prefix) + 1:]
    # root may itself be a list instance token like "virtualizer[v1]"
    if path.startswith(prefix + "["):
        _, _, rest = path.partition("/")
        return rest
    raise ValidationError(f"path {path!r} does not start at root {root_name!r}")


def _split_leaf(path: str) -> tuple[str, str]:
    path = path.strip("/")
    if "/" not in path:
        return "", path
    parent, _, last = path.rpartition("/")
    return parent, last


def patch_size_bytes(entries: list[DiffEntry]) -> int:
    """Wire size of an edit script (JSON), for control-plane metrics."""
    return len(json.dumps([entry.to_dict() for entry in entries]).encode())
