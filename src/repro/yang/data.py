"""Data-side classes of the YANG-like engine.

A :class:`DataNode` instantiates a schema node: containers hold child
data nodes by name, list nodes hold instances by key value, leaves hold
a canonicalized value.  Paths use the compact form
``/virtualizer/nodes/node[un1]/flowtable/flowentry[f3]/match``.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, Optional

from repro.yang.schema import Container, Leaf, SchemaNode, YangList


class ValidationError(ValueError):
    """Raised when data does not conform to its schema."""


class DataNode:
    """One node of a data tree, bound to its schema node."""

    def __init__(self, schema: SchemaNode, key_value: Optional[str] = None):
        self.schema = schema
        #: for list *instances*: the key value addressing this instance
        self.key_value = key_value
        self.parent: Optional[DataNode] = None
        self.value: Any = None                      # leaves only
        self._children: dict[str, DataNode] = {}    # containers & instances
        self._instances: dict[str, DataNode] = {}   # list nodes only

    # -- classification ---------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return isinstance(self.schema, Leaf)

    @property
    def is_list(self) -> bool:
        return isinstance(self.schema, YangList) and self.key_value is None

    @property
    def is_list_instance(self) -> bool:
        return isinstance(self.schema, YangList) and self.key_value is not None

    @property
    def is_container(self) -> bool:
        return isinstance(self.schema, Container)

    # -- structure building -------------------------------------------------

    def set_leaf(self, name: str, value: Any) -> "DataNode":
        """Create/overwrite a child leaf."""
        schema = self._child_schema(name)
        if not isinstance(schema, Leaf):
            raise ValidationError(f"{self.path()}/{name} is not a leaf")
        node = self._children.get(name)
        if node is None:
            node = DataNode(schema)
            node.parent = self
            self._children[name] = node
        node.value = schema.check_value(value)
        return node

    def container(self, name: str) -> "DataNode":
        """Get-or-create a child container."""
        schema = self._child_schema(name)
        if not isinstance(schema, Container):
            raise ValidationError(f"{self.path()}/{name} is not a container")
        node = self._children.get(name)
        if node is None:
            node = DataNode(schema)
            node.parent = self
            self._children[name] = node
        return node

    def list_node(self, name: str) -> "DataNode":
        """Get-or-create the child *list* node (holder of instances)."""
        schema = self._child_schema(name)
        if not isinstance(schema, YangList):
            raise ValidationError(f"{self.path()}/{name} is not a list")
        node = self._children.get(name)
        if node is None:
            node = DataNode(schema)
            node.parent = self
            self._children[name] = node
        return node

    def add_instance(self, key_value: str) -> "DataNode":
        """Add an instance to a list node (self must be the list holder)."""
        if not self.is_list:
            raise ValidationError(f"{self.path()} is not a list node")
        key_value = str(key_value)
        if key_value in self._instances:
            raise ValidationError(f"duplicate list key {key_value!r} at {self.path()}")
        instance = DataNode(self.schema, key_value=key_value)
        instance.parent = self
        assert isinstance(self.schema, YangList)
        instance.set_leaf(self.schema.key, key_value)
        self._instances[key_value] = instance
        return instance

    def instance(self, key_value: str) -> "DataNode":
        try:
            return self._instances[str(key_value)]
        except KeyError:
            raise ValidationError(
                f"no instance {key_value!r} in list {self.path()}") from None

    def has_instance(self, key_value: str) -> bool:
        return str(key_value) in self._instances

    def remove_instance(self, key_value: str) -> None:
        if str(key_value) not in self._instances:
            raise ValidationError(
                f"no instance {key_value!r} in list {self.path()}")
        del self._instances[str(key_value)]

    def remove_child(self, name: str) -> None:
        if name not in self._children:
            raise ValidationError(f"no child {name!r} at {self.path()}")
        del self._children[name]

    # -- navigation ---------------------------------------------------------

    def child(self, name: str) -> "DataNode":
        try:
            return self._children[name]
        except KeyError:
            raise ValidationError(f"no child {name!r} at {self.path()}") from None

    def has_child(self, name: str) -> bool:
        return name in self._children

    def get(self, name: str, default: Any = None) -> Any:
        """Value of child leaf ``name`` or ``default``."""
        node = self._children.get(name)
        if node is None or not node.is_leaf:
            return default
        return node.value

    def children(self) -> Iterator["DataNode"]:
        return iter(self._children.values())

    def instances(self) -> Iterator["DataNode"]:
        return iter(self._instances.values())

    def instance_keys(self) -> list[str]:
        return list(self._instances)

    def _child_schema(self, name: str) -> SchemaNode:
        schema = self.schema
        if isinstance(schema, (Container, YangList)):
            if name not in schema.children:
                raise ValidationError(f"schema has no child {name!r} at {self.path()}")
            return schema.children[name]
        raise ValidationError(f"{self.path()} cannot have children")

    # -- paths ----------------------------------------------------------------

    def path(self) -> str:
        parts: list[str] = []
        node: Optional[DataNode] = self
        while node is not None:
            if node.is_list_instance:
                parts.append(f"{node.schema.name}[{node.key_value}]")
                node = node.parent.parent if node.parent else None
            else:
                parts.append(node.schema.name)
                node = node.parent
        return "/" + "/".join(reversed(parts))

    def resolve(self, path: str) -> "DataNode":
        """Resolve a path relative to this node ('' or '/' = self)."""
        node: DataNode = self
        for token in [t for t in path.strip("/").split("/") if t]:
            if "[" in token:
                name, _, rest = token.partition("[")
                key = rest.rstrip("]")
                node = node.list_node(name) if name not in node._children \
                    else node._children[name]
                node = node.instance(key)
            else:
                node = node.child(token)
        return node

    # -- validation -------------------------------------------------------------

    def validate(self) -> list[str]:
        """Return a list of problems (empty = valid)."""
        problems: list[str] = []
        self._validate_into(problems)
        return problems

    def _validate_into(self, problems: list[str]) -> None:
        schema = self.schema
        if isinstance(schema, Leaf):
            if self.value is None and schema.mandatory:
                problems.append(f"{self.path()}: mandatory leaf unset")
            return
        if isinstance(schema, YangList) and self.is_list:
            for instance in self._instances.values():
                instance._validate_into(problems)
            return
        # container or list instance: check mandatory leaves exist
        for name, child_schema in schema.children.items():
            if isinstance(child_schema, Leaf) and child_schema.mandatory:
                if name not in self._children or self._children[name].value is None:
                    problems.append(f"{self.path()}/{name}: mandatory leaf missing")
        for child in self._children.values():
            child._validate_into(problems)

    # -- copy / serialization ------------------------------------------------------

    def copy(self) -> "DataNode":
        clone = DataNode(self.schema, key_value=self.key_value)
        clone.value = self.value
        for name, child in self._children.items():
            child_clone = child.copy()
            child_clone.parent = clone
            clone._children[name] = child_clone
        for key, instance in self._instances.items():
            instance_clone = instance.copy()
            instance_clone.parent = clone
            clone._instances[key] = instance_clone
        return clone

    def to_dict(self) -> Any:
        if self.is_leaf:
            return self.value
        if self.is_list:
            return {key: inst.to_dict() for key, inst in sorted(self._instances.items())}
        return {name: child.to_dict() for name, child in sorted(self._children.items())}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_xml(self, indent: int = 0) -> str:
        """Compact XML-ish rendering (for logs and byte-count metrics)."""
        pad = "  " * indent
        name = self.schema.name
        if self.is_leaf:
            return f"{pad}<{name}>{self.value}</{name}>"
        if self.is_list:
            return "\n".join(inst.to_xml(indent) for inst in self._instances.values())
        inner = [child.to_xml(indent + 1) for child in self._children.values()]
        if not inner:
            return f"{pad}<{name}/>"
        body = "\n".join(inner)
        return f"{pad}<{name}>\n{body}\n{pad}</{name}>"

    def __repr__(self) -> str:
        if self.is_leaf:
            return f"<DataLeaf {self.path()}={self.value!r}>"
        return f"<DataNode {self.path()}>"


def data_from_dict(schema: SchemaNode, data: Any,
                   key_value: Optional[str] = None) -> DataNode:
    """Build a data tree from :meth:`DataNode.to_dict` output."""
    node = DataNode(schema, key_value=key_value)
    _fill_from_dict(node, data)
    return node


def _fill_from_dict(node: DataNode, data: Any) -> None:
    if node.is_leaf:
        if data is not None:
            assert isinstance(node.schema, Leaf)
            node.value = node.schema.check_value(data)
        return
    if node.is_list:
        for key, instance_data in data.items():
            instance = node.add_instance(key)
            _fill_from_dict(instance, instance_data)
        return
    schema = node.schema
    for name, child_data in data.items():
        child_schema = schema.children.get(name)
        if child_schema is None:
            raise ValidationError(f"unknown child {name!r} at {node.path()}")
        if isinstance(child_schema, Leaf):
            node.set_leaf(name, child_data)
        elif isinstance(child_schema, Container):
            _fill_from_dict(node.container(name), child_data)
        else:
            _fill_from_dict(node.list_node(name), child_data)
