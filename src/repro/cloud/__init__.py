"""Legacy data-center domain: OpenStack-like cloud + ODL-like fabric.

"As a legacy data center solution, we support clouds managed by
OpenStack and OpenDaylight.  This requires a UNIFY conform local
orchestrator to be implemented on top of an OpenStack domain."

- :mod:`repro.cloud.nova` — Nova-style compute: flavors, images, a
  filter/weigher scheduler, hypervisor hosts and VM lifecycle with
  boot latency on the virtual clock;
- :mod:`repro.cloud.odl` — OpenDaylight-style fabric controller
  programming a leaf-spine topology of OpenFlow switches;
- :mod:`repro.cloud.domain` — the physical domain (fabric + compute
  hosts) and :class:`CloudLocalOrchestrator`, the UNIFY-conform local
  orchestrator that exposes the whole DC as one BiS-BiS and internally
  maps its configuration onto Nova boots + ODL paths.
"""

from repro.cloud.nova import (
    ComputeHost,
    FilterScheduler,
    Flavor,
    Image,
    NoValidHost,
    NovaCompute,
    VMInstance,
)
from repro.cloud.odl import OdlController
from repro.cloud.domain import CloudDomain, CloudLocalOrchestrator

__all__ = [
    "ComputeHost",
    "FilterScheduler",
    "Flavor",
    "Image",
    "NoValidHost",
    "NovaCompute",
    "VMInstance",
    "OdlController",
    "CloudDomain",
    "CloudLocalOrchestrator",
]
