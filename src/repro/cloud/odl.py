"""OpenDaylight-style fabric controller.

Programs the DC leaf-spine fabric through OpenFlow, exposed to the
local orchestrator as a northbound "install path / remove path" API
(the shape of ODL's flow-programming REST interface).  Internally it is
a :class:`~repro.openflow.controller.ControllerEndpoint` plus a
topology graph, like the POX controller but DC-flavoured.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx

from repro.openflow.controller import ControllerEndpoint
from repro.openflow.messages import (
    Action,
    ActionOutput,
    ActionPopVlan,
    ActionPushVlan,
    Match,
)
from repro.openflow.switch import OpenFlowSwitch
from repro.sim.kernel import Simulator


class OdlController:
    """Fabric controller: connects switches, installs tagged paths."""

    def __init__(self, name: str = "odl", simulator: Optional[Simulator] = None):
        self.name = name
        self.endpoint = ControllerEndpoint(name, simulator=simulator)
        self.graph = nx.DiGraph()
        self.paths_installed = 0

    def connect(self, switch: OpenFlowSwitch) -> None:
        self.endpoint.connect_switch(switch)
        self.graph.add_node(switch.dpid)

    def register_link(self, src_dpid: str, src_port: str, dst_dpid: str,
                      dst_port: str) -> None:
        self.graph.add_edge(src_dpid, dst_dpid, src_port=src_port,
                            dst_port=dst_port)
        self.graph.add_edge(dst_dpid, src_dpid, src_port=dst_port,
                            dst_port=src_port)

    def install_path(self, *, ingress_dpid: str, ingress_port: str,
                     egress_dpid: str, egress_port: str,
                     flowclass: str = "", transport_vlan: Optional[int] = None,
                     match_vlan: Optional[int] = None,
                     egress_vlan: Optional[int] = None,
                     cookie: str = "") -> list[str]:
        """Install a unidirectional flow path across the fabric.

        - ``match_vlan``: VLAN the traffic carries when entering the
          domain (matched at the ingress switch; e.g. the inter-domain
          chain tag), or None for untagged ingress;
        - ``transport_vlan``: VLAN isolating this path *inside* the
          fabric (pushed at ingress, popped at egress; skipped on
          single-switch paths);
        - ``egress_vlan``: VLAN the traffic must carry when it leaves
          the path (next chain tag, or the preserved ingress tag for
          transit), or None for untagged egress.

        VLAN tags are single-level (push overwrites, pop clears), which
        matches the single-tag steering the prototype uses.
        """
        path = nx.shortest_path(self.graph, ingress_dpid, egress_dpid)
        single = len(path) == 1
        in_port = ingress_port
        for index, dpid in enumerate(path):
            first = index == 0
            last = index == len(path) - 1
            out_port = (egress_port if last
                        else self.graph.edges[dpid, path[index + 1]]["src_port"])
            if first:
                match = Match.from_flowclass(flowclass, in_port=in_port)
                if match_vlan is not None:
                    match = Match(**{**match.to_dict(), "dl_vlan": match_vlan})
            else:
                match = Match(in_port=in_port, dl_vlan=transport_vlan)
            actions: list[Action] = []
            if first and not single and transport_vlan is not None:
                actions.append(ActionPushVlan(transport_vlan))
            if last:
                carried = (transport_vlan if (not single
                                              and transport_vlan is not None)
                           else match_vlan)
                if egress_vlan is None and carried is not None:
                    actions.append(ActionPopVlan())
                elif egress_vlan is not None and egress_vlan != carried:
                    actions.append(ActionPushVlan(egress_vlan))
            actions.append(ActionOutput(out_port))
            self.endpoint.send_flow_mod(
                dpid, match=match, actions=actions,
                priority=300 if first else 250, cookie=cookie)
            if not last:
                in_port = self.graph.edges[dpid, path[index + 1]]["dst_port"]
        self.paths_installed += 1
        return path

    def remove_by_cookie(self, cookie: str) -> None:
        for dpid in self.endpoint.connected_dpids():
            self.endpoint.delete_flows(dpid, cookie=cookie)

    def flow_mods_sent(self) -> int:
        return self.endpoint.flow_mods_sent
