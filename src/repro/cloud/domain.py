"""The cloud domain: leaf-spine fabric + hypervisors + local orchestrator.

The domain advertises itself northbound as a **single BiS-BiS** whose
capacity is the whole Nova cell — the textbook use of the paper's
abstraction ("delegation of all resource management to the lower
layer").  Internally the :class:`CloudLocalOrchestrator` re-maps that
one-node configuration: NF instances become Nova VM boots placed by the
filter scheduler, and BiS-BiS flow entries become ODL-installed fabric
paths between gateway ports and VM vNIC ports.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.click.catalog import NF_CATALOG, make_nf_process, supported_functional_types
from repro.cloud.nova import (
    ComputeHost,
    Image,
    NovaCompute,
    NoValidHost,
    VMInstance,
    flavor_for,
)
from repro.cloud.odl import OdlController
from repro.infra.nfswitch import NFHostingSwitch
from repro.infra.tags import vlan_for_hop
from repro.netconf.messages import UNIFY_CAPABILITY
from repro.netconf.server import NetconfServer
from repro.netem.network import Network
from repro.netem.node import Host
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType, InfraType, ResourceVector
from repro.nffg.serialize import nffg_from_dict
from repro.openflow.switch import OpenFlowSwitch


class CloudDomain:
    """Physical DC: leaf-spine fabric, hypervisors, Nova + ODL."""

    domain_type = DomainType.OPENSTACK

    def __init__(self, name: str, network: Network, *,
                 num_spines: int = 2, num_leaves: int = 2,
                 hosts_per_leaf: int = 2,
                 host_vcpus: float = 16.0, host_ram_mb: float = 32768.0,
                 host_disk_gb: float = 512.0,
                 fabric_bandwidth: float = 10_000.0,
                 fabric_delay: float = 0.2,
                 vm_boot_delay_ms: float = 1500.0):
        self.name = name
        self.network = network
        self.fabric_bandwidth = fabric_bandwidth
        self.fabric_delay = fabric_delay
        self.nova = NovaCompute(network.simulator,
                                boot_delay_ms=vm_boot_delay_ms)
        self.odl = OdlController(f"{name}-odl", simulator=network.simulator)
        self.spines: list[OpenFlowSwitch] = []
        self.leaves: list[OpenFlowSwitch] = []
        self.compute_switches: dict[str, NFHostingSwitch] = {}
        self.sap_hosts: dict[str, Host] = {}
        self._handoff_ports: dict[str, tuple[str, str]] = {}
        self._build_fabric(num_spines, num_leaves, hosts_per_leaf,
                           host_vcpus, host_ram_mb, host_disk_gb)
        for functional_type in supported_functional_types():
            impl = NF_CATALOG[functional_type]
            self.nova.register_image(Image(
                name=f"img-{functional_type}", functional_type=functional_type,
                min_ram_mb=impl.default_resources.mem / 2))

    def _build_fabric(self, num_spines: int, num_leaves: int,
                      hosts_per_leaf: int, vcpus: float, ram: float,
                      disk: float) -> None:
        for index in range(num_spines):
            spine = OpenFlowSwitch(f"{self.name}-spine{index}",
                                   self.network.simulator,
                                   forwarding_delay_ms=0.005)
            self.network.add(spine)
            self.odl.connect(spine)
            self.spines.append(spine)
        for index in range(num_leaves):
            leaf = OpenFlowSwitch(f"{self.name}-leaf{index}",
                                  self.network.simulator,
                                  forwarding_delay_ms=0.005)
            self.network.add(leaf)
            self.odl.connect(leaf)
            self.leaves.append(leaf)
            for spine in self.spines:
                port_l, port_s = f"to-{spine.id}", f"to-{leaf.id}"
                self.network.connect(leaf.id, port_l, spine.id, port_s,
                                     bandwidth_mbps=self.fabric_bandwidth,
                                     delay_ms=self.fabric_delay)
                self.odl.register_link(leaf.id, port_l, spine.id, port_s)
            for host_index in range(hosts_per_leaf):
                dpid = f"{self.name}-compute{index}-{host_index}"
                vswitch = NFHostingSwitch(dpid, self.network.simulator,
                                          forwarding_delay_ms=0.01)
                self.network.add(vswitch)
                self.odl.connect(vswitch)
                self.compute_switches[dpid] = vswitch
                port_c, port_l = f"to-{leaf.id}", f"to-{dpid}"
                self.network.connect(dpid, port_c, leaf.id, port_l,
                                     bandwidth_mbps=self.fabric_bandwidth,
                                     delay_ms=self.fabric_delay)
                self.odl.register_link(dpid, port_c, leaf.id, port_l)
                self.nova.add_host(ComputeHost(name=dpid, vcpus=vcpus,
                                               ram_mb=ram, disk_gb=disk))

    # -- edge attachment ---------------------------------------------------

    def add_sap(self, sap_id: str, leaf_index: int = 0) -> Host:
        leaf = self.leaves[leaf_index]
        host = self.network.add_host(f"{self.name}-host-{sap_id}")
        port = f"sap-{sap_id}"
        self.network.connect(host.id, "0", leaf.id, port,
                             bandwidth_mbps=self.fabric_bandwidth,
                             delay_ms=0.1)
        self.sap_hosts[sap_id] = host
        self._handoff_ports[sap_id] = (leaf.id, port)
        return host

    def add_handoff(self, tag: str, leaf_index: int = 0) -> tuple[str, str]:
        leaf = self.leaves[leaf_index]
        port = f"sap-{tag}"
        self._handoff_ports[tag] = (leaf.id, port)
        return leaf.id, port

    def handoff(self, tag: str) -> tuple[str, str]:
        return self._handoff_ports[tag]

    # -- northbound resource description -----------------------------------------

    @property
    def bisbis_id(self) -> str:
        return f"{self.name}-bisbis"

    def domain_view(self) -> NFFG:
        """Single-BiS-BiS view of the whole data center.

        Capacities are the *installed inventory*: the orchestrator's
        adaptation layer is the single bookkeeper of what it deployed,
        so the view must not also subtract that consumption (it would
        be counted twice).
        """
        view = NFFG(id=f"{self.name}-view", name=f"cloud domain {self.name}")
        total_vcpus = sum(h.vcpus for h in self.nova.hosts.values())
        total_ram = sum(h.ram_mb for h in self.nova.hosts.values())
        total_disk = sum(h.disk_gb for h in self.nova.hosts.values())
        internal_delay = 4 * self.fabric_delay + 0.05
        infra = view.add_infra(
            self.bisbis_id, infra_type=InfraType.BISBIS,
            domain=self.domain_type,
            resources=ResourceVector(cpu=total_vcpus, mem=total_ram,
                                     storage=total_disk,
                                     bandwidth=self.fabric_bandwidth,
                                     delay=internal_delay),
            supported_types=[img.functional_type
                             for img in self.nova.images.values()],
            cost_per_cpu=0.7)
        for tag, (_, _) in self._handoff_ports.items():
            infra.add_port(f"sap-{tag}", sap_tag=tag)
        for sap_id in self.sap_hosts:
            sap = view.add_sap(sap_id)
            view.add_link(sap_id, list(sap.ports)[0], infra.id,
                          f"sap-{sap_id}", id=f"sl-{self.name}-{sap_id}",
                          bandwidth=self.fabric_bandwidth, delay=0.1)
        return view


class CloudLocalOrchestrator(NetconfServer):
    """UNIFY-conform local orchestrator on top of the cloud domain.

    Accepts a single-BiS-BiS install-NFFG over NETCONF and realizes it
    with Nova boots + ODL fabric paths.  VM boots are asynchronous on
    the virtual clock; steering flows are installed immediately and
    carry traffic as soon as the VM's Click process attaches.
    """

    def __init__(self, domain: CloudDomain):
        super().__init__(f"{domain.name}-lo", capabilities=[UNIFY_CAPABILITY])
        self.domain = domain
        self._nf_vms: dict[str, VMInstance] = {}
        self._nf_attach: dict[str, str] = {}   # nf_id -> compute dpid
        self._path_cookies: set[str] = set()
        self.deploy_count = 0
        self.on_apply(self._apply_config)
        self.register_rpc("list-vms", lambda params: [
            {"id": vm.id, "name": vm.name, "state": vm.state.value,
             "host": vm.host} for vm in self.domain.nova.list_instances()])

    # -- NETCONF hooks -----------------------------------------------------------

    def validate_config(self, config: Any) -> list[str]:
        if config is None:
            return []
        try:
            install = nffg_from_dict(config["nffg"])
        except Exception as exc:  # noqa: BLE001
            return [f"config is not a valid NFFG: {exc}"]
        problems = []
        for infra in install.infras:
            if infra.id != self.domain.bisbis_id:
                problems.append(
                    f"unknown BiS-BiS {infra.id!r} (expected "
                    f"{self.domain.bisbis_id!r})")
        for nf in install.nfs:
            if f"img-{nf.functional_type}" not in self.domain.nova.images:
                problems.append(f"no image for NF type {nf.functional_type!r}")
        return problems

    def state_data(self) -> dict[str, Any]:
        return {
            "vms": {nf_id: vm.state.value for nf_id, vm in self._nf_vms.items()},
            "paths_installed": self.domain.odl.paths_installed,
            "deploys": self.deploy_count,
        }

    # -- reconciliation -------------------------------------------------------------

    def _apply_config(self, config: Any) -> None:
        if config is None:
            self._teardown_all()
            return
        install = nffg_from_dict(config["nffg"])
        self.deploy_count += 1
        self._reconcile_vms(install)
        self._reprogram_paths(install)
        self.notify("deploy-finished", {"nffg": install.id})

    def _reconcile_vms(self, install: NFFG) -> None:
        wanted = {nf.id: nf for nf in install.nfs
                  if install.host_of(nf.id) == self.domain.bisbis_id}
        for nf_id in list(self._nf_vms):
            nf = wanted.get(nf_id)
            if nf is None or (self._nf_vms[nf_id].image.functional_type
                              != nf.functional_type):
                self._destroy_vm(nf_id)
        for nf_id, nf in wanted.items():
            if nf_id in self._nf_vms:
                continue
            image = self.domain.nova.images[f"img-{nf.functional_type}"]
            flavor = flavor_for(nf.resources.cpu, nf.resources.mem,
                                nf.resources.storage)
            try:
                vm = self.domain.nova.boot(nf_id, flavor, image)
            except NoValidHost as exc:
                self.notify("vm-error", {"nf": nf_id, "error": str(exc)})
                continue
            self._nf_vms[nf_id] = vm
            nf_ports = sorted(int(p) for p in nf.ports) or [1, 2]
            vm.on_active(lambda active_vm, nf_id=nf_id, ports=nf_ports:
                         self._attach_vm(nf_id, active_vm, ports))

    def _attach_vm(self, nf_id: str, vm: VMInstance, nf_ports: list[int]) -> None:
        vswitch = self.domain.compute_switches[vm.host]
        process = make_nf_process(nf_id, vm.image.functional_type)
        vswitch.attach_nf(nf_id, process, nf_ports=nf_ports)
        self._nf_attach[nf_id] = vm.host
        self.notify("vnf-started", {"id": nf_id, "host": vm.host,
                                    "vm": vm.id})

    def _destroy_vm(self, nf_id: str) -> None:
        vm = self._nf_vms.pop(nf_id, None)
        if vm is None:
            return
        dpid = self._nf_attach.pop(nf_id, None)
        if dpid is not None:
            self.domain.compute_switches[dpid].detach_nf(nf_id)
        self.domain.nova.delete(vm.id)
        self.notify("vnf-stopped", {"id": nf_id})

    # -- fabric steering ---------------------------------------------------------------

    def _resolve_port(self, install: NFFG, port_id: str) -> tuple[str, str]:
        """BiS-BiS port id -> (fabric dpid, dataplane port)."""
        if port_id.startswith("sap-"):
            return self.domain.handoff(port_id[len("sap-"):])
        # NF attachment port "<nf_id>-<n>": locate the hosting vswitch
        nf_id, _, _ = port_id.rpartition("-")
        vm = self._nf_vms.get(nf_id)
        if vm is None:
            raise KeyError(f"port {port_id!r}: NF {nf_id!r} has no VM")
        return vm.host, port_id

    def _reprogram_paths(self, install: NFFG) -> None:
        for cookie in self._path_cookies:
            self.domain.odl.remove_by_cookie(cookie)
        self._path_cookies.clear()
        if not install.has_node(self.domain.bisbis_id):
            return
        infra = install.infra(self.domain.bisbis_id)
        entry_seq = 0
        for port, rule in infra.iter_flowrules():
            entry_seq += 1
            match_fields = rule.match_fields()
            action_fields = rule.action_fields()
            out_port = action_fields.get("output", "")
            try:
                ingress_dpid, ingress_port = self._resolve_port(install, port.id)
                egress_dpid, egress_port = self._resolve_port(install, out_port)
            except KeyError as exc:
                self.notify("path-error", {"error": str(exc)})
                continue
            match_vlan = (vlan_for_hop(match_fields["tag"])
                          if "tag" in match_fields else None)
            if "tag" in action_fields:
                egress_vlan: Optional[int] = vlan_for_hop(action_fields["tag"])
            elif "untag" in action_fields:
                egress_vlan = None
            else:
                egress_vlan = match_vlan
            cookie = rule.hop_id or f"fe{entry_seq}"
            transport = vlan_for_hop(f"transport:{cookie}:{entry_seq}")
            self.domain.odl.install_path(
                ingress_dpid=ingress_dpid, ingress_port=ingress_port,
                egress_dpid=egress_dpid, egress_port=egress_port,
                flowclass=match_fields.get("flowclass", ""),
                transport_vlan=transport, match_vlan=match_vlan,
                egress_vlan=egress_vlan, cookie=cookie)
            self._path_cookies.add(cookie)

    def _teardown_all(self) -> None:
        for nf_id in list(self._nf_vms):
            self._destroy_vm(nf_id)
        for cookie in self._path_cookies:
            self.domain.odl.remove_by_cookie(cookie)
        self._path_cookies.clear()

    # -- helpers ------------------------------------------------------------------------

    def all_vms_active(self) -> bool:
        from repro.cloud.nova import VMState
        return all(vm.state == VMState.ACTIVE
                   for vm in self._nf_vms.values())

    def wait_ready(self, max_virtual_ms: float = 60_000.0) -> bool:
        """Run the simulator until every requested VM is ACTIVE."""
        deadline = self.domain.network.simulator.now + max_virtual_ms
        while not self.all_vms_active():
            next_time = self.domain.network.simulator.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.domain.network.simulator.step()
        return self.all_vms_active()
