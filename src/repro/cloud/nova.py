"""Nova-style compute service.

Reproduces the OpenStack scheduling pipeline at the fidelity the UNIFY
local orchestrator exercises: flavors and images, hypervisor hosts with
vCPU/RAM/disk inventories, a FilterScheduler (filters prune, weighers
rank) and VM lifecycle (BUILD -> ACTIVE after a boot delay on the
virtual clock, DELETED on teardown).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.sim.kernel import Simulator


class NoValidHost(RuntimeError):
    """Raised when scheduling finds no host (Nova's NoValidHost)."""


@dataclass(frozen=True)
class Flavor:
    name: str
    vcpus: float
    ram_mb: float
    disk_gb: float


@dataclass(frozen=True)
class Image:
    name: str
    #: the NF functional type this image boots into (our images *are*
    #: packaged NF implementations)
    functional_type: str
    min_ram_mb: float = 0.0
    min_disk_gb: float = 0.0


class VMState(str, enum.Enum):
    BUILD = "BUILD"
    ACTIVE = "ACTIVE"
    ERROR = "ERROR"
    DELETED = "DELETED"


@dataclass
class VMInstance:
    id: str
    name: str
    flavor: Flavor
    image: Image
    host: str
    state: VMState = VMState.BUILD
    booted_at: float = 0.0
    #: callbacks fired when the VM reaches ACTIVE
    _on_active: list[Callable[["VMInstance"], None]] = field(
        default_factory=list, repr=False)

    def on_active(self, callback: Callable[["VMInstance"], None]) -> None:
        if self.state == VMState.ACTIVE:
            callback(self)
        else:
            self._on_active.append(callback)


@dataclass
class ComputeHost:
    name: str
    vcpus: float
    ram_mb: float
    disk_gb: float
    vcpus_used: float = 0.0
    ram_used: float = 0.0
    disk_used: float = 0.0

    def fits(self, flavor: Flavor) -> bool:
        return (self.vcpus_used + flavor.vcpus <= self.vcpus + 1e-9
                and self.ram_used + flavor.ram_mb <= self.ram_mb + 1e-9
                and self.disk_used + flavor.disk_gb <= self.disk_gb + 1e-9)

    def claim(self, flavor: Flavor) -> None:
        self.vcpus_used += flavor.vcpus
        self.ram_used += flavor.ram_mb
        self.disk_used += flavor.disk_gb

    def release(self, flavor: Flavor) -> None:
        self.vcpus_used -= flavor.vcpus
        self.ram_used -= flavor.ram_mb
        self.disk_used -= flavor.disk_gb

    @property
    def free_ram(self) -> float:
        return self.ram_mb - self.ram_used

    @property
    def free_vcpus(self) -> float:
        return self.vcpus - self.vcpus_used


# -- scheduler ---------------------------------------------------------------

FilterFn = Callable[[ComputeHost, Flavor, Image], bool]
WeigherFn = Callable[[ComputeHost], float]


def compute_filter(host: ComputeHost, flavor: Flavor, image: Image) -> bool:
    return host.fits(flavor)


def image_properties_filter(host: ComputeHost, flavor: Flavor,
                            image: Image) -> bool:
    return (flavor.ram_mb >= image.min_ram_mb
            and flavor.disk_gb >= image.min_disk_gb)


def ram_weigher(host: ComputeHost) -> float:
    return host.free_ram


def cpu_weigher(host: ComputeHost) -> float:
    return host.free_vcpus


class FilterScheduler:
    """Nova's filter scheduler: prune with filters, rank with weighers."""

    def __init__(self,
                 filters: Optional[Iterable[FilterFn]] = None,
                 weighers: Optional[Iterable[tuple[WeigherFn, float]]] = None):
        self.filters = list(filters or (compute_filter,
                                        image_properties_filter))
        self.weighers = list(weighers or ((ram_weigher, 1.0),
                                          (cpu_weigher, 1.0)))

    def select_host(self, hosts: Iterable[ComputeHost], flavor: Flavor,
                    image: Image) -> ComputeHost:
        candidates = [host for host in hosts
                      if all(f(host, flavor, image) for f in self.filters)]
        if not candidates:
            raise NoValidHost(
                f"no valid host for flavor {flavor.name!r} / "
                f"image {image.name!r}")
        return max(candidates,
                   key=lambda host: (sum(weight * weigher(host)
                                         for weigher, weight in self.weighers),
                                     host.name))


# -- compute API -----------------------------------------------------------------

DEFAULT_FLAVORS = {
    "m1.tiny": Flavor("m1.tiny", vcpus=0.5, ram_mb=64.0, disk_gb=1.0),
    "m1.small": Flavor("m1.small", vcpus=1.0, ram_mb=128.0, disk_gb=2.0),
    "m1.medium": Flavor("m1.medium", vcpus=2.0, ram_mb=512.0, disk_gb=8.0),
    "m1.large": Flavor("m1.large", vcpus=4.0, ram_mb=2048.0, disk_gb=16.0),
}


def flavor_for(vcpus: float, ram_mb: float, disk_gb: float) -> Flavor:
    """Smallest default flavor covering the demand, or a custom one."""
    for flavor in sorted(DEFAULT_FLAVORS.values(), key=lambda f: f.vcpus):
        if (flavor.vcpus >= vcpus and flavor.ram_mb >= ram_mb
                and flavor.disk_gb >= disk_gb):
            return flavor
    return Flavor(f"custom-{vcpus}c{ram_mb}m", vcpus=vcpus, ram_mb=ram_mb,
                  disk_gb=disk_gb)


class NovaCompute:
    """The compute API: boot/delete/list with virtual-time boot delay."""

    def __init__(self, simulator: Simulator, *,
                 scheduler: Optional[FilterScheduler] = None,
                 boot_delay_ms: float = 1500.0):
        self.simulator = simulator
        self.scheduler = scheduler or FilterScheduler()
        self.boot_delay_ms = boot_delay_ms
        self.hosts: dict[str, ComputeHost] = {}
        self.instances: dict[str, VMInstance] = {}
        self.images: dict[str, Image] = {}
        self._id_seq = itertools.count(1)
        self.boots = 0
        self.scheduling_failures = 0

    def add_host(self, host: ComputeHost) -> ComputeHost:
        self.hosts[host.name] = host
        return host

    def register_image(self, image: Image) -> Image:
        self.images[image.name] = image
        return image

    def boot(self, name: str, flavor: Flavor, image: Image) -> VMInstance:
        """Schedule + boot a VM; ACTIVE after ``boot_delay_ms``."""
        try:
            host = self.scheduler.select_host(self.hosts.values(), flavor,
                                              image)
        except NoValidHost:
            self.scheduling_failures += 1
            raise
        host.claim(flavor)
        vm = VMInstance(id=f"vm-{next(self._id_seq)}", name=name,
                        flavor=flavor, image=image, host=host.name)
        self.instances[vm.id] = vm
        self.boots += 1
        self.simulator.schedule(self.boot_delay_ms, self._activate, vm.id)
        return vm

    def _activate(self, vm_id: str) -> None:
        vm = self.instances.get(vm_id)
        if vm is None or vm.state != VMState.BUILD:
            return
        vm.state = VMState.ACTIVE
        vm.booted_at = self.simulator.now
        callbacks, vm._on_active = vm._on_active, []
        for callback in callbacks:
            callback(vm)

    def delete(self, vm_id: str) -> None:
        vm = self.instances.get(vm_id)
        if vm is None or vm.state == VMState.DELETED:
            return
        self.hosts[vm.host].release(vm.flavor)
        vm.state = VMState.DELETED

    def list_instances(self, include_deleted: bool = False) -> list[VMInstance]:
        return [vm for vm in self.instances.values()
                if include_deleted or vm.state != VMState.DELETED]

    def capacity(self) -> tuple[float, float, float]:
        """(free vcpus, free ram, free disk) across the cell."""
        return (sum(h.free_vcpus for h in self.hosts.values()),
                sum(h.free_ram for h in self.hosts.values()),
                sum(h.disk_gb - h.disk_used for h in self.hosts.values()))
