"""Structured sanitizer results.

The runtime concurrency sanitizer (:mod:`repro.sanitize.locks`) records
three classes of evidence while the control plane runs:

- **lock-order inversions** — the global lock-order graph contains a
  cycle, i.e. two threads could acquire the same locks in opposite
  orders and deadlock;
- **blocking under lock** — a blocking call (``time.sleep``, retry
  backoff, adapter I/O) executed while the thread held a shared-state
  lock, serializing unrelated work behind it (the PR 4 ``FaultPlan``
  delay bug);
- **hold-time outliers** — a shared-state lock held longer than the
  configured budget, a latency smell even when nothing blocks.

:class:`SanitizerReport` is the immutable summary a soak run or the
``repro check`` smoke hands back; ``ok()`` is the CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class SanitizerIssue:
    """One observed violation (not an inversion; those are cycles)."""

    #: "blocking-under-lock" | "hold-time" | "unheld-release"
    kind: str
    #: the lock involved (innermost held lock for blocking issues)
    lock: str
    detail: str
    thread: str = ""

    def __str__(self) -> str:
        suffix = f" [{self.thread}]" if self.thread else ""
        return f"{self.kind}: lock {self.lock!r}: {self.detail}{suffix}"


@dataclass(frozen=True)
class LockOrderCycle:
    """A potential-deadlock cycle in the lock-order graph."""

    #: lock names along the cycle, starting from the smallest name
    locks: tuple[str, ...]
    #: one witness "A -> B (thread)" string per edge of the cycle
    witnesses: tuple[str, ...] = ()

    def __str__(self) -> str:
        ring = " -> ".join(self.locks + (self.locks[0],))
        return f"lock-order inversion: {ring}"


@dataclass
class SanitizerReport:
    """Everything one sanitizer state observed, frozen at report time."""

    inversions: list[LockOrderCycle] = field(default_factory=list)
    issues: list[SanitizerIssue] = field(default_factory=list)
    #: total tracked-lock acquisitions observed (sanity: > 0 means the
    #: instrumented code actually ran under the sanitizer)
    acquisitions: int = 0
    #: distinct tracked locks seen at least once
    locks_seen: int = 0

    def ok(self) -> bool:
        return not self.inversions and not self.issues

    @property
    def blocking(self) -> list[SanitizerIssue]:
        return [i for i in self.issues if i.kind == "blocking-under-lock"]

    @property
    def hold_outliers(self) -> list[SanitizerIssue]:
        return [i for i in self.issues if i.kind == "hold-time"]

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok(),
            "acquisitions": self.acquisitions,
            "locks_seen": self.locks_seen,
            "inversions": [list(cycle.locks) for cycle in self.inversions],
            "issues": [{"kind": issue.kind, "lock": issue.lock,
                        "detail": issue.detail, "thread": issue.thread}
                       for issue in self.issues],
        }

    def render_text(self) -> str:
        lines = [f"sanitizer: {self.acquisitions} acquisitions over "
                 f"{self.locks_seen} lock(s)"]
        for cycle in self.inversions:
            lines.append(f"  {cycle}")
            for witness in cycle.witnesses:
                lines.append(f"    via {witness}")
        for issue in self.issues:
            lines.append(f"  {issue}")
        verdict = "clean" if self.ok() else (
            f"{len(self.inversions)} inversion(s), "
            f"{len(self.issues)} issue(s)")
        lines.append(f"  {verdict}")
        return "\n".join(lines)
