"""Instrumented locks and the global concurrency-sanitizer state.

:class:`TrackedLock` / :class:`TrackedRLock` are drop-in replacements
for :class:`threading.Lock` / :class:`threading.RLock` that report every
acquisition into a :class:`SanitizerState`:

- a **global lock-order graph** (edge ``A -> B`` when some thread
  acquired ``B`` while holding ``A``) whose cycles are potential
  deadlocks;
- **blocking-under-lock** events, raised by the instrumented blocking
  points (:func:`note_blocking` at ``time.sleep`` hooks, retry backoff
  and adapter I/O) whenever the calling thread holds a shared-state
  lock;
- **hold-time outliers**, shared-state locks held past a budget.

The sanitizer costs nothing when disabled: :func:`make_lock` returns a
plain ``threading.Lock`` unless ``REPRO_SANITIZE=1`` is set (or a test
called :func:`enable`), and :func:`note_blocking` is a single global
``None`` check.

Locks that *serialize work by design* — the dispatcher's per-domain
mutexes, which intentionally hold while an adapter push runs — are
created with ``blocking_ok=True``; they still feed the lock-order graph
but are exempt from blocking/hold-time checks.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Optional, Union

from repro.sanitize.report import LockOrderCycle, SanitizerIssue, SanitizerReport

#: default hold-time budget for shared-state locks (seconds); generous
#: so scheduler hiccups on CI never flag, while a sleep-under-lock does
DEFAULT_HOLD_BUDGET_S = 0.5


def _env_hold_budget() -> float:
    raw = os.environ.get("REPRO_SANITIZE_HOLD_MS", "")
    try:
        return float(raw) / 1000.0 if raw else DEFAULT_HOLD_BUDGET_S
    except ValueError:
        return DEFAULT_HOLD_BUDGET_S


class SanitizerState:
    """Aggregates evidence from every tracked lock bound to it.

    All mutation happens under one small internal mutex (a raw
    ``threading.Lock`` — the sanitizer must not sanitize itself); the
    per-thread held-lock stack lives in a ``threading.local``.
    """

    def __init__(self, *, hold_budget_s: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.hold_budget_s = (_env_hold_budget() if hold_budget_s is None
                              else hold_budget_s)
        self.clock = clock
        self._mutex = threading.Lock()
        #: lock-order edges: held-lock -> {acquired-lock -> witness}
        self._order: dict[str, dict[str, str]] = {}
        self._issues: list[SanitizerIssue] = []
        self._locks_seen: set[str] = set()
        self.acquisitions = 0
        self._tls = threading.local()

    # -- per-thread bookkeeping -------------------------------------------

    def _held(self) -> list[tuple[str, float, bool]]:
        """This thread's stack of (lock name, acquire time, blocking_ok)."""
        held = getattr(self._tls, "held", None)
        if held is None:
            held = self._tls.held = []
        return held

    def holding(self) -> tuple[str, ...]:
        """Names of the locks the calling thread currently holds."""
        return tuple(name for name, _, _ in self._held())

    # -- event sinks -------------------------------------------------------

    def note_acquire(self, name: str, *, blocking_ok: bool = False) -> None:
        held = self._held()
        now = self.clock()
        thread = threading.current_thread().name
        with self._mutex:
            self.acquisitions += 1
            self._locks_seen.add(name)
            for held_name, _, _ in held:
                if held_name != name:
                    self._order.setdefault(held_name, {}) \
                        .setdefault(name, thread)
        held.append((name, now, blocking_ok))

    def note_release(self, name: str) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index][0] != name:
                continue
            _, acquired_at, blocking_ok = held.pop(index)
            elapsed = self.clock() - acquired_at
            if not blocking_ok and elapsed > self.hold_budget_s:
                self._add_issue(SanitizerIssue(
                    kind="hold-time", lock=name,
                    detail=(f"held {elapsed * 1e3:.1f} ms "
                            f"(budget {self.hold_budget_s * 1e3:.0f} ms)"),
                    thread=threading.current_thread().name))
            return
        self._add_issue(SanitizerIssue(
            kind="unheld-release", lock=name,
            detail="released by a thread that never acquired it",
            thread=threading.current_thread().name))

    def note_blocking(self, label: str) -> None:
        """A blocking call is about to run on the calling thread."""
        guarded = [name for name, _, blocking_ok in self._held()
                   if not blocking_ok]
        if guarded:
            self._add_issue(SanitizerIssue(
                kind="blocking-under-lock", lock=guarded[-1],
                detail=f"{label} while holding {guarded}",
                thread=threading.current_thread().name))

    def _add_issue(self, issue: SanitizerIssue) -> None:
        with self._mutex:
            self._issues.append(issue)

    # -- analysis ----------------------------------------------------------

    def find_inversions(self) -> list[LockOrderCycle]:
        """Cycles in the lock-order graph (potential deadlocks).

        Tarjan over the recorded edges; every strongly connected
        component with more than one lock is reported once, rotated to
        start at its smallest lock name so output is deterministic.
        """
        with self._mutex:
            graph = {src: dict(dsts) for src, dsts in self._order.items()}
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = [0]
        components: list[list[str]] = []

        def strongconnect(node: str) -> None:
            index_of[node] = low[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in graph.get(node, ()):
                if succ not in index_of:
                    strongconnect(succ)
                    low[node] = min(low[node], low[succ])
                elif succ in on_stack:
                    low[node] = min(low[node], index_of[succ])
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)

        for node in sorted(set(graph) | {dst for dsts in graph.values()
                                         for dst in dsts}):
            if node not in index_of:
                strongconnect(node)

        cycles = []
        for component in components:
            if len(component) < 2:
                continue
            ring = sorted(component)
            witnesses = tuple(
                f"{src} -> {dst} ({graph[src][dst]})"
                for src in ring for dst in graph.get(src, ())
                if dst in set(ring))
            cycles.append(LockOrderCycle(locks=tuple(ring),
                                         witnesses=witnesses))
        cycles.sort(key=lambda cycle: cycle.locks)
        return cycles

    def report(self) -> SanitizerReport:
        with self._mutex:
            issues = list(self._issues)
            acquisitions = self.acquisitions
            locks_seen = len(self._locks_seen)
        return SanitizerReport(inversions=self.find_inversions(),
                               issues=issues, acquisitions=acquisitions,
                               locks_seen=locks_seen)


class TrackedLock:
    """Drop-in ``threading.Lock`` feeding a :class:`SanitizerState`.

    Bound to an explicit state (tests) or to the module-global one at
    each acquire (production code created after :func:`enable`).
    """

    _factory = staticmethod(threading.Lock)

    def __init__(self, name: str = "", *,
                 state: Optional[SanitizerState] = None,
                 blocking_ok: bool = False) -> None:
        self._inner = self._factory()
        self.name = name or f"lock@{id(self):x}"
        self.blocking_ok = blocking_ok
        self._state = state

    def _current_state(self) -> Optional[SanitizerState]:
        return self._state if self._state is not None else _STATE

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            state = self._current_state()
            if state is not None:
                state.note_acquire(self.name, blocking_ok=self.blocking_ok)
        return got

    def release(self) -> None:
        state = self._current_state()
        if state is not None:
            state.note_release(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.name!r}>"


class TrackedRLock(TrackedLock):
    """Drop-in ``threading.RLock``; only the outermost acquire/release
    of each thread feeds the sanitizer."""

    _factory = staticmethod(threading.RLock)

    def __init__(self, name: str = "", *,
                 state: Optional[SanitizerState] = None,
                 blocking_ok: bool = False) -> None:
        super().__init__(name, state=state, blocking_ok=blocking_ok)
        self._depth = threading.local()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            depth = getattr(self._depth, "value", 0)
            self._depth.value = depth + 1
            if depth == 0:
                state = self._current_state()
                if state is not None:
                    state.note_acquire(self.name,
                                       blocking_ok=self.blocking_ok)
        return got

    def release(self) -> None:
        depth = getattr(self._depth, "value", 0)
        if depth == 1:
            state = self._current_state()
            if state is not None:
                state.note_release(self.name)
        self._depth.value = max(0, depth - 1)
        self._inner.release()


LockLike = Union[threading.Lock, TrackedLock]

#: the module-global sanitizer state; ``None`` = sanitizing disabled
_STATE: Optional[SanitizerState] = None


def _env_enabled() -> bool:
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


if _env_enabled():
    _STATE = SanitizerState()


def enabled() -> bool:
    return _STATE is not None


def state() -> Optional[SanitizerState]:
    """The global sanitizer state, or None when disabled."""
    return _STATE


def enable(fresh: bool = True) -> SanitizerState:
    """Turn the global sanitizer on; returns the (new) state."""
    global _STATE
    if fresh or _STATE is None:
        _STATE = SanitizerState()
    return _STATE


def disable() -> Optional[SanitizerState]:
    """Turn the global sanitizer off; returns the detached state."""
    global _STATE
    detached, _STATE = _STATE, None
    return detached


def restore(previous: Optional[SanitizerState]) -> None:
    """Re-install a state detached by :func:`disable` (scoped runs)."""
    global _STATE
    _STATE = previous


def make_lock(name: str, *, blocking_ok: bool = False) -> LockLike:
    """A mutex for ``name``: tracked when sanitizing, plain otherwise.

    This is the factory every shared-state lock in the control plane
    goes through, so ``REPRO_SANITIZE=1`` instruments the whole hot
    path with zero overhead when off.
    """
    if _STATE is not None:
        return TrackedLock(name, blocking_ok=blocking_ok)
    return threading.Lock()


def make_rlock(name: str, *, blocking_ok: bool = False):
    if _STATE is not None:
        return TrackedRLock(name, blocking_ok=blocking_ok)
    return threading.RLock()


def note_blocking(label: str) -> None:
    """Declare an imminent blocking call (sleep, I/O, backoff).

    The instrumented blocking points call this unconditionally; it is
    a no-op unless the sanitizer is on.
    """
    current = _STATE
    if current is not None:
        current.note_blocking(label)


def tracked_sleep(seconds: float) -> None:
    """``time.sleep`` that reports itself to the sanitizer first."""
    note_blocking(f"time.sleep({seconds:g})")
    time.sleep(seconds)
