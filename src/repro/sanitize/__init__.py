"""Runtime concurrency sanitizer for the control plane.

Two pieces:

- :mod:`repro.sanitize.locks` — :class:`TrackedLock`/:class:`TrackedRLock`
  (drop-in ``threading.Lock``/``RLock``) that record per-thread lock
  acquisition order into a global lock-order graph, plus the
  :func:`make_lock` factory the control plane creates its shared-state
  locks through.  Enabled via ``REPRO_SANITIZE=1`` (or :func:`enable`
  in tests); free when off.
- :mod:`repro.sanitize.report` — the structured
  :class:`SanitizerReport`: lock-order inversions (potential deadlock
  cycles), blocking calls under a lock, and hold-time outliers.

The static counterpart — AST rules catching the same bug classes at
review time — lives in :mod:`repro.lint.code_rules` (``CC0xx``); both
surface through the ``repro check`` CLI.
"""

from repro.sanitize.locks import (
    DEFAULT_HOLD_BUDGET_S,
    SanitizerState,
    TrackedLock,
    TrackedRLock,
    disable,
    enable,
    enabled,
    make_lock,
    make_rlock,
    note_blocking,
    restore,
    state,
    tracked_sleep,
)
from repro.sanitize.report import LockOrderCycle, SanitizerIssue, SanitizerReport

__all__ = [
    "DEFAULT_HOLD_BUDGET_S",
    "LockOrderCycle",
    "SanitizerIssue",
    "SanitizerReport",
    "SanitizerState",
    "TrackedLock",
    "TrackedRLock",
    "disable",
    "enable",
    "enabled",
    "make_lock",
    "make_rlock",
    "note_blocking",
    "restore",
    "state",
    "tracked_sleep",
]
