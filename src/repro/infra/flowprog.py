"""NFFG flow rule -> OpenFlow FlowMod translation.

Every domain orchestrator performs the same last-mile translation from
the abstract BiS-BiS flow rules produced by the mapping layer
(``in_port=...;flowclass=...;tag=...`` / ``output=...;tag|untag``) to
concrete OpenFlow messages; this module centralizes it.
"""

from __future__ import annotations

from typing import Optional

from repro.infra.tags import vlan_for_hop
from repro.nffg.model import Flowrule, NodeInfra
from repro.openflow.controller import ControllerEndpoint
from repro.openflow.messages import (
    Action,
    ActionOutput,
    ActionPopVlan,
    ActionPushVlan,
    Match,
)


def flowrule_to_flowmod(rule: Flowrule) -> tuple[Match, list[Action], int]:
    """Translate one NFFG flow rule; returns (match, actions, priority)."""
    match_fields = rule.match_fields()
    in_port = match_fields.get("in_port")
    flowclass = match_fields.get("flowclass", "")
    match = Match.from_flowclass(flowclass, in_port=in_port)
    if "tag" in match_fields:
        match = Match(**{**match.to_dict(),
                         "dl_vlan": vlan_for_hop(match_fields["tag"])})
    actions: list[Action] = []
    action_fields = rule.action_fields()
    if "tag" in action_fields:
        actions.append(ActionPushVlan(vlan_for_hop(action_fields["tag"])))
    if "untag" in action_fields:
        actions.append(ActionPopVlan())
    output = action_fields.get("output")
    if output:
        actions.append(ActionOutput(output))
    # more specific matches shadow the per-port defaults
    priority = 100 + 10 * match.specificity()
    return match, actions, priority


def program_infra_flows(controller: ControllerEndpoint, dpid: str,
                        infra: NodeInfra, *, cookie: str = "",
                        hop_filter: Optional[set[str]] = None) -> int:
    """Install every flow rule of an NFFG infra node on a switch.

    ``cookie`` (typically the service id) enables later teardown via
    :func:`remove_service_flows`.  Returns the number of FlowMods sent.
    """
    sent = 0
    for port, rule in infra.iter_flowrules():
        if hop_filter is not None and rule.hop_id not in hop_filter:
            continue
        match, actions, priority = flowrule_to_flowmod(rule)
        if match.in_port is None:
            match = Match(**{**match.to_dict(), "in_port": port.id})
        controller.send_flow_mod(dpid, match=match, actions=actions,
                                 priority=priority,
                                 cookie=cookie or (rule.hop_id or ""))
        sent += 1
    return sent


def remove_service_flows(controller: ControllerEndpoint, dpid: str,
                         cookie: str) -> None:
    controller.delete_flows(dpid, cookie=cookie)
