"""Shared infrastructure elements used by several technology domains."""

from repro.infra.nfswitch import NFHostingSwitch
from repro.infra.tags import vlan_for_hop

__all__ = ["NFHostingSwitch", "vlan_for_hop"]
