"""NF-hosting switch: the dataplane form of a BiS-BiS.

An OpenFlow switch whose port space includes *NF attachment ports*:
outputting a packet to port ``<nf_id>-<nf_port>`` pushes it through the
attached Click process (after the NF's processing delay), and whatever
the NF emits re-enters the switch as if received on the NF's egress
attachment port.  This is exactly the BiS-BiS contract — "running NFs
and steering traffic transparently among infrastructure and NF ports".
"""

from __future__ import annotations

from typing import Optional

from repro.click.process import ClickProcess
from repro.netem.packet import Packet
from repro.openflow.switch import OpenFlowSwitch
from repro.sim.kernel import Simulator


class NFHostingSwitch(OpenFlowSwitch):
    """OpenFlow switch + NF execution environment."""

    def __init__(self, dpid: str, simulator: Simulator,
                 forwarding_delay_ms: float = 0.01):
        super().__init__(dpid, simulator,
                         forwarding_delay_ms=forwarding_delay_ms)
        #: nf attachment port id -> (process, nf external port number)
        self._nf_ports: dict[str, tuple[ClickProcess, int]] = {}
        #: (nf_id, nf external port) -> attachment port id
        self._nf_port_names: dict[tuple[str, int], str] = {}
        self._processes: dict[str, ClickProcess] = {}

    # -- NF lifecycle -----------------------------------------------------

    def attach_nf(self, nf_id: str, process: ClickProcess,
                  nf_ports: Optional[list[int]] = None) -> list[str]:
        """Attach a running Click process; returns attachment port ids
        named ``<nf_id>-<n>`` for each NF external port ``n``."""
        if nf_id in self._processes:
            raise ValueError(f"NF {nf_id!r} already attached to {self.id!r}")
        self._processes[nf_id] = process
        created: list[str] = []
        for nf_port in (nf_ports if nf_ports is not None else [1, 2]):
            port_id = f"{nf_id}-{nf_port}"
            self._nf_ports[port_id] = (process, nf_port)
            self._nf_port_names[(nf_id, nf_port)] = port_id
            created.append(port_id)
        return created

    def detach_nf(self, nf_id: str) -> None:
        process = self._processes.pop(nf_id, None)
        if process is None:
            return
        process.stop()
        for port_id in [pid for pid, (proc, _) in self._nf_ports.items()
                        if proc is process]:
            del self._nf_ports[port_id]
        for key in [k for k, v in self._nf_port_names.items()
                    if k[0] == nf_id]:
            del self._nf_port_names[key]

    def attached_nfs(self) -> list[str]:
        return list(self._processes)

    def nf_process(self, nf_id: str) -> Optional[ClickProcess]:
        return self._processes.get(nf_id)

    def ports(self) -> list[str]:
        return list(self.links) + list(self._nf_ports)

    # -- forwarding into/out of NFs -------------------------------------------

    def _output(self, packet: Packet, port: str, in_port: str) -> None:
        nf_binding = self._nf_ports.get(port)
        if nf_binding is None:
            super()._output(packet, port, in_port)
            return
        process, nf_port = nf_binding
        # Click NF port convention: external port 1 = gate 0, port 2 =
        # gate 1, ... — the catalog's configs use FromPort(0)/ToPort(1).
        self.simulator.schedule(process.processing_delay_ms,
                                self._run_nf, process, packet, nf_port - 1)

    def _run_nf(self, process: ClickProcess, packet: Packet,
                in_gate: int) -> None:
        emissions = process.push(packet, in_gate, now=self.simulator.now)
        for out_gate, emitted in emissions:
            attachment = self._nf_port_names.get((process.name, out_gate + 1))
            if attachment is None:
                self.drops += 1
                continue
            # the NF's emission re-enters the big switch on its
            # attachment port, where the next flow rule picks it up
            self.receive(emitted, attachment)
