"""Chain tagging.

When an SG hop's substrate path crosses more than one BiS-BiS, the
mapping layer emits abstract ``tag=<hop_id>`` / ``untag`` actions; the
dataplane realizes them as VLAN tags.  Every domain derives the VLAN
from the hop id with the same deterministic function so independently
configured domains agree on the wire format.
"""

from __future__ import annotations

import zlib

#: usable VLAN range (avoid 0/1 and the >4094 reserved values)
_VLAN_BASE = 100
_VLAN_SPAN = 3900


def vlan_for_hop(hop_id: str) -> int:
    """Deterministic hop-id -> VLAN mapping (stable across processes)."""
    digest = zlib.crc32(hop_id.encode())
    return _VLAN_BASE + digest % _VLAN_SPAN
