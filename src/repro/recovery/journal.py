"""Write-ahead intent journal for the orchestrator's desired state.

Every lifecycle operation (deploy / update / teardown / heal / state
import) runs inside an :class:`IntentScope`:

1. an ``intent`` record is appended *before* the books are touched,
2. each domain push lands an ``outcome`` record (success/failure,
   bytes, delta-vs-full), and
3. a terminal ``commit`` record carries the export-schema state of
   every service the intent settled (``None`` = removed), or an
   ``abort`` record marks the intent rolled back.

Replaying the journal therefore folds to exactly the committed desired
state: an intent without its commit is, by construction, an operation
the crash interrupted, and recovery treats it as never having happened
(the anti-entropy push sweeps whatever config it half-landed).

Checkpoints bound replay cost: every ``checkpoint_every`` commits the
journal asks its bound ``state_provider`` (the orchestrator's
``export_state``) for a full snapshot, folds it into a single
``checkpoint`` record, and truncates the log — atomically via a temp
file + ``os.replace`` when file-backed.

The journal is an in-memory ring by default; pass ``path=`` (or set
``REPRO_JOURNAL``) for a file-backed JSONL log.  Constructing a
journal with a path starts a fresh log (truncating any stale file);
use :meth:`IntentJournal.load` to re-open an existing log for
recovery.  Records carry the ambient trace/span ids when
observability is enabled, so a journal line can be cross-referenced
with the trace that wrote it.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Optional

from repro import obs
from repro.perf import counters
from repro.recovery.crash import OrchestratorCrash
from repro.sanitize import make_lock

#: how many committed intents accumulate before a checkpoint folds them
DEFAULT_CHECKPOINT_EVERY = 32

#: every record kind the journal can hold, in two-phase order
RECORD_KINDS = ("intent", "outcome", "commit", "abort", "checkpoint")


class JournalError(RuntimeError):
    """A malformed journal file or record."""


@dataclass
class ReplayState:
    """The fold of a journal: committed desired state + bookkeeping."""

    #: export-schema state ({"services": {...}, "resilience": {...}})
    state: dict
    #: intents that reached their commit record
    committed: int = 0
    #: intents closed by an explicit abort record
    aborted: int = 0
    #: intents with neither terminal record — interrupted by the crash
    in_flight: list[dict] = field(default_factory=list)
    #: True when the fold started from a checkpoint record
    checkpoint_used: bool = False


def fold_records(records: list[dict]) -> ReplayState:
    """Fold journal records into the committed desired state.

    A ``checkpoint`` resets the base to its embedded snapshot; each
    ``commit`` applies its per-service payload on top (``None`` value
    deletes the service).  Intents without a terminal record are
    returned as ``in_flight`` and contribute nothing to the state —
    that is the atomicity guarantee recovery relies on.
    """
    base: dict = {"services": {}}
    open_intents: dict[int, dict] = {}
    committed = aborted = 0
    checkpoint_used = False
    for record in records:
        kind = record.get("kind")
        payload = record.get("payload") or {}
        if kind == "checkpoint":
            base = json.loads(json.dumps(payload.get("state", {"services": {}})))
            base.setdefault("services", {})
            open_intents.clear()
            checkpoint_used = True
        elif kind == "intent":
            open_intents[record["intent_id"]] = {
                "intent_id": record["intent_id"],
                "op": record.get("op"),
                "service_id": record.get("service_id"),
                "outcomes": {},
            }
        elif kind == "outcome":
            entry = open_intents.get(record.get("intent_id"))
            if entry is not None:
                entry["outcomes"][payload.get("domain", "?")] = {
                    "success": payload.get("success", False),
                    "stage": payload.get("stage", "push"),
                    "error": payload.get("error", ""),
                }
        elif kind == "commit":
            if open_intents.pop(record.get("intent_id"), None) is not None:
                committed += 1
            for service_id, data in (payload.get("services") or {}).items():
                if data is None:
                    base["services"].pop(service_id, None)
                else:
                    base["services"][service_id] = data
            if payload.get("resilience") is not None:
                base["resilience"] = payload["resilience"]
        elif kind == "abort":
            if open_intents.pop(record.get("intent_id"), None) is not None:
                aborted += 1
        else:
            raise JournalError(f"unknown journal record kind: {kind!r}")
    return ReplayState(state=base, committed=committed, aborted=aborted,
                       in_flight=list(open_intents.values()),
                       checkpoint_used=checkpoint_used)


class IntentScope:
    """One two-phase intent: records outcomes, then commits or aborts.

    Used as a context manager; leaving the scope without a terminal
    record writes an ``abort`` (the operation failed some other way),
    *except* when the exception is :class:`OrchestratorCrash` — a
    crashed process writes nothing, which is the point.
    """

    def __init__(self, journal: "IntentJournal", intent_id: int, op: str,
                 service_id: Optional[str]) -> None:
        self.journal = journal
        self.intent_id = intent_id
        self.op = op
        self.service_id = service_id
        self.closed = False

    def outcome(self, domain: str, success: bool, *, stage: str = "push",
                error: str = "") -> None:
        """Record one domain push outcome under this intent."""
        self.journal.append(
            "outcome", intent_id=self.intent_id, op=self.op,
            service_id=self.service_id,
            payload={"domain": domain, "success": success, "stage": stage,
                     "error": error})

    def record_pushes(self, reports, *, stage: str = "push") -> None:
        """Record a batch of :class:`AdapterReport` push outcomes."""
        for report in reports:
            self.outcome(report.domain, bool(report.success), stage=stage,
                         error=report.error or "")

    def commit(self, services: dict[str, Optional[dict]],
               **extra: Any) -> None:
        """Terminal commit: ``services`` maps service id to its
        export-schema record, or ``None`` for a removed service."""
        payload = {"services": services}
        payload.update(extra)
        self.journal.append("commit", intent_id=self.intent_id, op=self.op,
                            service_id=self.service_id, payload=payload)
        self.closed = True
        counters.incr("recovery.intent.committed")
        self.journal._note_commit()

    def abort(self, reason: str = "") -> None:
        """Terminal abort: the operation rolled back; replay skips it."""
        if self.closed:
            return
        self.journal.append("abort", intent_id=self.intent_id, op=self.op,
                            service_id=self.service_id,
                            payload={"reason": reason})
        self.closed = True
        counters.incr("recovery.intent.aborted")

    def __enter__(self) -> "IntentScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self.closed and not isinstance(exc, OrchestratorCrash):
            self.abort(reason=repr(exc) if exc is not None
                       else "scope exited without commit")
        return False


class IntentJournal:
    """Append-only intent log with checkpoint truncation.

    In-memory by default; ``path=`` makes it file-backed (JSONL, one
    record per line, flushed per append).  ``crash_plan`` — when set —
    is consulted *before* every append, so a plan armed at index ``k``
    leaves exactly ``k`` records behind.
    """

    def __init__(self, path: Optional[str | os.PathLike] = None, *,
                 checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY) -> None:
        self.path = Path(path) if path else None
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.crash_plan = None
        #: bound by the orchestrator to its ``export_state`` so commits
        #: can trigger checkpoints without the journal knowing about it
        self.state_provider: Optional[Callable[[], dict]] = None
        self._lock = make_lock("recovery.journal")
        self._records: list[dict] = []  # guarded-by: _lock
        self._seq = 0  # guarded-by: _lock
        self._intent_seq = 0  # guarded-by: _lock
        self._commits_since_checkpoint = 0  # guarded-by: _lock
        self._handle = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")

    # ------------------------------------------------------------------
    # appending

    def append(self, kind: str, *, intent_id: Optional[int] = None,
               op: Optional[str] = None, service_id: Optional[str] = None,
               payload: Optional[dict] = None) -> dict:
        """Append one record; the single choke point every write — and
        every injected crash — goes through."""
        if kind not in RECORD_KINDS:
            raise JournalError(f"unknown journal record kind: {kind!r}")
        plan = self.crash_plan
        if plan is not None:
            plan.on_append()  # may raise OrchestratorCrash
        trace_id, span_id = obs.current_ids()
        with self._lock:
            record = {
                "seq": self._seq,
                "ts_ms": time.time() * 1e3,
                "kind": kind,
                "intent_id": intent_id,
                "op": op,
                "service_id": service_id,
                "payload": payload or {},
                "trace_id": trace_id,
                "span_id": span_id,
            }
            self._seq += 1
            self._records.append(record)
            if self._handle is not None:
                self._handle.write(json.dumps(record, sort_keys=True) + "\n")
                self._handle.flush()
        counters.incr("recovery.journal.appends")
        return record

    def intent(self, op: str, service_id: Optional[str] = None,
               payload: Optional[dict] = None) -> IntentScope:
        """Open a new intent scope, appending its ``intent`` record."""
        with self._lock:
            self._intent_seq += 1
            intent_id = self._intent_seq
        self.append("intent", intent_id=intent_id, op=op,
                    service_id=service_id, payload=payload)
        return IntentScope(self, intent_id, op, service_id)

    # ------------------------------------------------------------------
    # checkpoints

    def _note_commit(self) -> None:
        with self._lock:
            self._commits_since_checkpoint += 1
        self.maybe_checkpoint()

    def maybe_checkpoint(self) -> bool:
        """Checkpoint when enough commits accumulated and a state
        provider is bound; returns True when one was taken."""
        if self.state_provider is None:
            return False
        with self._lock:
            if self._commits_since_checkpoint < self.checkpoint_every:
                return False
        self.checkpoint(self.state_provider())
        return True

    def checkpoint(self, state: dict) -> dict:
        """Fold ``state`` into a single checkpoint record and truncate
        the log (atomically via ``os.replace`` when file-backed)."""
        plan = self.crash_plan
        if plan is not None:
            plan.on_append()
        trace_id, span_id = obs.current_ids()
        with self._lock:
            record = {
                "seq": self._seq,
                "ts_ms": time.time() * 1e3,
                "kind": "checkpoint",
                "intent_id": None,
                "op": None,
                "service_id": None,
                "payload": {"state": state},
                "trace_id": trace_id,
                "span_id": span_id,
            }
            self._seq += 1
            dropped = len(self._records)
            self._records = [record]
            self._commits_since_checkpoint = 0
            if self.path is not None:
                if self._handle is not None:
                    self._handle.close()
                temp = self.path.with_suffix(self.path.suffix + ".tmp")
                with open(temp, "w", encoding="utf-8") as handle:
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(temp, self.path)
                self._handle = open(self.path, "a", encoding="utf-8")
        counters.incr("recovery.journal.checkpoints")
        counters.incr("recovery.journal.truncated", dropped)
        obs.event("journal.checkpoint", dropped=dropped)
        return record

    # ------------------------------------------------------------------
    # reading

    def records(self) -> list[dict]:
        with self._lock:
            return list(self._records)

    @property
    def total_appends(self) -> int:
        """Appends ever made, including records a checkpoint dropped."""
        with self._lock:
            return self._seq

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records())

    def replay(self) -> ReplayState:
        """Fold the current records into committed desired state."""
        return fold_records(self.records())

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # loading an existing log

    @classmethod
    def from_env(cls, **kwargs) -> "IntentJournal":
        """Journal at ``REPRO_JOURNAL`` (file-backed) or in-memory."""
        return cls(os.environ.get("REPRO_JOURNAL") or None, **kwargs)

    @classmethod
    def load(cls, path: str | os.PathLike,
             *, checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
             ) -> "IntentJournal":
        """Re-open an existing JSONL journal for recovery: records are
        read back, sequence/intent counters resume where the crashed
        writer stopped, and further appends continue the same file."""
        source = Path(path)
        records: list[dict] = []
        with open(source, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise JournalError(
                        f"{source}:{lineno}: malformed journal line "
                        f"({exc})") from exc
                if record.get("kind") not in RECORD_KINDS:
                    raise JournalError(
                        f"{source}:{lineno}: unknown record kind "
                        f"{record.get('kind')!r}")
                records.append(record)
        journal = cls.__new__(cls)
        journal.path = source
        journal.checkpoint_every = max(1, int(checkpoint_every))
        journal.crash_plan = None
        journal.state_provider = None
        journal._lock = make_lock("recovery.journal")
        journal._records = records
        journal._seq = max((r.get("seq", -1) for r in records), default=-1) + 1
        journal._intent_seq = max(
            (r["intent_id"] for r in records
             if r.get("intent_id") is not None), default=0)
        commits = 0
        for record in records:
            if record["kind"] == "checkpoint":
                commits = 0
            elif record["kind"] == "commit":
                commits += 1
        journal._commits_since_checkpoint = commits
        journal._handle = open(source, "a", encoding="utf-8")
        counters.incr("recovery.journal.loaded")
        return journal
