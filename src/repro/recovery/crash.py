"""Seeded orchestrator-crash injection between journal appends.

The resilience package's :class:`FaultPlan` kills *adapters*; a
:class:`CrashPlan` kills the *orchestrator itself* — it arms the
journal so that the append at a chosen index raises
:class:`OrchestratorCrash` before the record is written.  The journal
is therefore left exactly as a real process death would leave it:
every record before the crash durable, nothing after.

``OrchestratorCrash`` derives from ``BaseException`` on purpose: a
dead process is not a handled error, so the broad ``except Exception``
recovery paths in the control plane must not swallow it.
"""

from __future__ import annotations

from typing import Optional

from repro import obs
from repro.perf import counters
from repro.sim.random import SeededRandom


class OrchestratorCrash(BaseException):
    """The orchestrator process died (simulated) mid-operation."""


class CrashPlan:
    """Crash the orchestrator before the ``at``-th journal append.

    Indices are zero-based and count *attempted* appends, so a plan
    armed at ``k`` leaves exactly ``k`` records in the journal.  A plan
    fires at most once; ``at=None`` (or an index past the end of the
    run) never fires.
    """

    def __init__(self, at: Optional[int] = None, *, label: str = "") -> None:
        self.at = at
        self.label = label
        self.appends = 0
        self.fired = False

    @classmethod
    def random_plan(cls, seed: int, *, horizon: int = 24) -> "CrashPlan":
        """A seeded plan crashing somewhere in ``[0, horizon]``."""
        rng = SeededRandom(seed).fork("crash-plan")
        return cls(at=rng.randint(0, horizon), label=f"seed={seed}")

    def on_append(self) -> None:
        """Journal hook: called before every append."""
        index = self.appends
        self.appends += 1
        if self.fired or self.at is None or index != self.at:
            return
        self.fired = True
        counters.incr("recovery.crash.injected")
        obs.event("crash.injected", append_index=index, label=self.label)
        raise OrchestratorCrash(
            f"injected crash before journal append #{index}"
            + (f" ({self.label})" if self.label else ""))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CrashPlan(at={self.at}, fired={self.fired}, "
                f"appends={self.appends})")
