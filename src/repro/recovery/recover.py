"""Crash recovery: rebuild from checkpoint + replay, then reconcile.

:func:`recover` is what a successor controller runs after the previous
orchestrator process died:

1. **Replay** — fold the journal (checkpoint + committed intents) into
   the export-schema desired state; in-flight intents contribute
   nothing and are thereby rolled back.
2. **Rebuild** — construct a fresh :class:`EscapeOrchestrator` sharing
   the journal, re-register the surviving domain adapters, and import
   the folded state (placements and routes replayed verbatim, breaker
   and pending-replay state restored from the last checkpoint).
3. **Anti-entropy** — fetch live domain views through the sharded CAL,
   diff them against the recovered desired state, then push the full
   desired configuration to every domain.  A full push *replaces* the
   domain's cumulative config, so it simultaneously finishes partially
   pushed intents, rolls back half-landed ones, and sweeps orphaned
   NFs/flowrules no committed service owns — at most once per domain,
   with the delta-push digest guard turning the push into a no-op or
   minimal delta on domains whose adapter state survived.
4. **Checkpoint** — fold the recovered state into the journal so the
   next crash replays from here, not from the previous epoch.

``dry_run=True`` stops after the diff: nothing is pushed and the
journal is left untouched (the rebuilt orchestrator books against a
scratch journal).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro import obs
from repro.orchestration.adapters import AdapterReport, DomainAdapter
from repro.perf import counters, observe
from repro.recovery.journal import IntentJournal

__all__ = ["DomainDiff", "RecoveryReport", "recover"]


@dataclass
class DomainDiff:
    """Recovered desired state vs the live view of one domain."""

    domain: str
    #: NF ids the committed desired state places on this domain
    desired_nfs: list[str] = field(default_factory=list)
    #: NF ids the domain's live view advertises (many domain types
    #: advertise substrate only; an empty list is then inconclusive)
    observed_nfs: list[str] = field(default_factory=list)
    #: observed NFs no committed service owns — swept by the push
    orphaned_nfs: list[str] = field(default_factory=list)
    #: the domain received pushes from an intent that never committed,
    #: so it may hold config the push must roll back
    touched_by_inflight: bool = False
    #: the live view fetch succeeded
    reachable: bool = True


@dataclass
class RecoveryReport:
    """What :func:`recover` rebuilt, diffed, and pushed."""

    orchestrator: object
    restored: list[str]
    committed: int
    aborted: int
    in_flight: list[dict]
    checkpoint_used: bool
    diffs: dict[str, DomainDiff]
    pushes: list[AdapterReport] = field(default_factory=list)
    duration_s: float = 0.0
    dry_run: bool = False

    def ok(self) -> bool:
        """True when every reconciliation push landed (or was a
        breaker-admitted skip that stays queued for replay)."""
        return all(r.success or r.skipped for r in self.pushes)

    def render_text(self) -> str:
        lines = [
            f"recovered {len(self.restored)} service(s)"
            + (" from checkpoint + journal" if self.checkpoint_used
               else " from journal replay")
            + (" [dry run]" if self.dry_run else ""),
            f"  intents: {self.committed} committed, "
            f"{self.aborted} aborted, "
            f"{len(self.in_flight)} in-flight rolled back",
        ]
        for intent in self.in_flight:
            target = intent.get("service_id") or "-"
            domains = sorted(intent.get("outcomes", {}))
            lines.append(
                f"    rolled back: {intent.get('op')} {target}"
                + (f" (had pushed to: {', '.join(domains)})"
                   if domains else " (no pushes recorded)"))
        for name in sorted(self.diffs):
            diff = self.diffs[name]
            flags = []
            if not diff.reachable:
                flags.append("UNREACHABLE")
            if diff.touched_by_inflight:
                flags.append("in-flight config possible")
            if diff.orphaned_nfs:
                flags.append(f"orphans: {', '.join(diff.orphaned_nfs)}")
            lines.append(
                f"  {name}: desired={len(diff.desired_nfs)} NF(s)"
                + (f", observed={len(diff.observed_nfs)}"
                   if diff.observed_nfs else "")
                + (f" [{'; '.join(flags)}]" if flags else ""))
        if self.pushes:
            rendered = ", ".join(
                f"{r.domain}:{'ok' if r.success else ('skipped' if r.skipped else 'FAILED')}"
                for r in self.pushes)
            lines.append(f"  reconciliation pushes: {rendered}")
        elif self.dry_run:
            lines.append("  no pushes performed (dry run)")
        lines.append(f"  took {self.duration_s * 1e3:.1f} ms")
        return "\n".join(lines)


def recover(journal: IntentJournal,
            adapters: Iterable[DomainAdapter], *,
            name: str = "recovered",
            dry_run: bool = False,
            push: bool = True,
            simulator: Optional[object] = None,
            **escape_kwargs) -> RecoveryReport:
    """Rebuild a fresh orchestrator from ``journal`` and reconcile it
    against the live ``adapters``.  Returns a :class:`RecoveryReport`
    whose ``orchestrator`` is the ready successor controller.

    Extra keyword arguments (``embedder``, ``cal_shards``,
    ``push_workers``, ...) are forwarded to the successor's
    constructor.
    """
    from repro.orchestration.escape import EscapeOrchestrator

    started = time.perf_counter()
    counters.incr("recovery.runs.dry" if dry_run else "recovery.runs")
    with obs.span("recover", dry_run=dry_run):
        replay = journal.replay()
        # the crash already happened: never let a still-armed plan kill
        # the successor's own journal appends
        journal.crash_plan = None
        # a dry run must not grow the real journal with import records
        successor_journal = IntentJournal() if dry_run else journal
        escape = EscapeOrchestrator(
            name, journal=successor_journal, simulator=simulator,
            **escape_kwargs)
        for adapter in adapters:
            escape.add_domain(adapter)
        with obs.span("recover/import"):
            restored = escape.import_state(replay.state, push=False)
        counters.incr("recovery.restored", len(restored))
        counters.incr("recovery.inflight.rolled_back",
                      len(replay.in_flight))

        inflight_domains = {domain
                            for intent in replay.in_flight
                            for domain in intent.get("outcomes", {})}
        with obs.span("recover/diff"):
            diffs = _diff_domains(escape, inflight_domains)

        pushes: list[AdapterReport] = []
        if push and not dry_run:
            with obs.span("recover/push"):
                pushes = escape.cal.push_all()
            if escape.simulator is not None:
                escape._wait_activation(60_000.0)
            # fold the recovered epoch into the journal: the next crash
            # replays from here instead of re-walking the old log
            journal.checkpoint(escape.export_state())

    duration = time.perf_counter() - started
    observe("recovery.latency_s", duration)
    report = RecoveryReport(
        orchestrator=escape, restored=restored,
        committed=replay.committed, aborted=replay.aborted,
        in_flight=replay.in_flight,
        checkpoint_used=replay.checkpoint_used,
        diffs=diffs, pushes=pushes, duration_s=duration, dry_run=dry_run)
    obs.event("recovery", restored=len(restored),
              in_flight=len(replay.in_flight), dry_run=dry_run,
              ok=report.ok(), duration_ms=round(duration * 1e3, 3))
    return report


def _diff_domains(escape, inflight_domains: set[str]) -> dict[str, DomainDiff]:
    """Fetch live views through the sharded CAL and diff each domain
    against the recovered desired state."""
    cal = escape.cal
    live = cal.pristine_view()
    desired_by_domain: dict[str, set[str]] = {
        nm: set() for nm in cal.adapters}
    all_desired: set[str] = set()
    for service_id in cal.deployed_services():
        _, result = cal.snapshot_service(service_id)
        for nf_id, infra_id in result.nf_placement.items():
            all_desired.add(nf_id)
            owner = cal._infra_owner.get(infra_id)
            if owner is not None:
                desired_by_domain.setdefault(owner, set()).add(nf_id)
    diffs: dict[str, DomainDiff] = {}
    for nm in cal.adapters:
        observed: set[str] = set()
        for infra_id, owner in cal._infra_owner.items():
            if owner != nm or not live.has_node(infra_id):
                continue
            observed |= {nf.id for nf in live.nfs_on(infra_id)}
        diffs[nm] = DomainDiff(
            domain=nm,
            desired_nfs=sorted(desired_by_domain.get(nm, ())),
            observed_nfs=sorted(observed),
            orphaned_nfs=sorted(observed - all_desired),
            touched_by_inflight=nm in inflight_domains,
            reachable=nm not in cal.last_view_failures)
    return diffs
