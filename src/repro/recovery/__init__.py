"""Crash-consistent control plane: write-ahead intent journal,
checkpoints, and recovery reconciliation.

The orchestrator is a long-lived controller of record; losing its
process must not lose the network.  This package provides the three
pieces that make that true:

``journal``
    :class:`IntentJournal` — an append-only JSONL log of two-phase
    intent records (intent → per-domain push outcomes → commit/abort)
    with periodic checkpoints that fold committed state into an
    ``export_state()`` snapshot and truncate the log.

``crash``
    :class:`CrashPlan` — a seeded fault injector that kills the
    orchestrator (raises :class:`OrchestratorCrash`) between any two
    journal appends, so every crash window is testable.

``recover``
    :func:`recover` — rebuild a fresh orchestrator from checkpoint +
    replay, then run an anti-entropy reconciliation pass against the
    live domains: re-assert committed desired state, roll back
    in-flight intents, and sweep orphaned NFs no committed service
    owns.
"""

from repro.recovery.crash import CrashPlan, OrchestratorCrash
from repro.recovery.journal import IntentJournal, IntentScope, JournalError
from repro.recovery.recover import DomainDiff, RecoveryReport, recover

__all__ = [
    "CrashPlan",
    "DomainDiff",
    "IntentJournal",
    "IntentScope",
    "JournalError",
    "OrchestratorCrash",
    "RecoveryReport",
    "recover",
]
