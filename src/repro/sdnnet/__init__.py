"""Legacy OpenFlow network domain + POX-like controller.

"The control of legacy OpenFlow networks is realized by a POX
controller and a corresponding adapter module."  This package
reproduces that: an event-driven controller framework in POX's style
(components subscribe to events on a core object), an L2-learning
module, topology bookkeeping and a path-pusher component the UNIFY
adapter drives to steer chain traffic across the legacy network.

Switches in this domain are forwarding-only (``SDN-SWITCH`` infra
type): they cannot host NFs, only transit traffic between neighbouring
domains — exactly the role of the legacy network in Fig. 1.
"""

from repro.sdnnet.pox import (
    Event,
    EventBus,
    L2LearningComponent,
    PathPusherComponent,
    POXController,
    TopologyComponent,
)
from repro.sdnnet.domain import SDNDomain

__all__ = [
    "Event",
    "EventBus",
    "POXController",
    "L2LearningComponent",
    "PathPusherComponent",
    "TopologyComponent",
    "SDNDomain",
]
