"""A POX-style controller framework.

POX structures a controller as *components* that register on a core
event bus and react to ``PacketIn`` / ``ConnectionUp`` events.  The
:class:`POXController` here keeps that shape: it owns a
:class:`~repro.openflow.controller.ControllerEndpoint`, converts raw
OF messages into bus events, and ships the three components the UNIFY
prototype relies on — L2 learning for default connectivity, topology
bookkeeping, and a path pusher the domain adapter calls to install
chain-steering flows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import networkx as nx

from repro.netem.packet import Packet
from repro.openflow.controller import ControllerEndpoint
from repro.openflow.messages import (
    ActionOutput,
    ActionPopVlan,
    Match,
    OFPP_FLOOD,
    PacketIn,
)
from repro.openflow.switch import OpenFlowSwitch
from repro.sim.kernel import Simulator


@dataclass
class Event:
    """A bus event: name + payload."""

    name: str
    data: dict[str, Any] = field(default_factory=dict)


class EventBus:
    """Minimal synchronous publish/subscribe."""

    def __init__(self) -> None:
        self._subscribers: dict[str, list[Callable[[Event], None]]] = {}
        self.events_published = 0

    def subscribe(self, name: str, handler: Callable[[Event], None]) -> None:
        self._subscribers.setdefault(name, []).append(handler)

    def publish(self, event: Event) -> None:
        self.events_published += 1
        for handler in self._subscribers.get(event.name, ()):
            handler(event)


class POXController:
    """Controller core: endpoint + event bus + components."""

    def __init__(self, name: str = "pox", simulator: Optional[Simulator] = None):
        self.name = name
        self.endpoint = ControllerEndpoint(name, simulator=simulator)
        self.bus = EventBus()
        self.components: dict[str, "Component"] = {}
        self.endpoint.on_packet_in(self._on_packet_in)

    def register(self, component: "Component") -> "Component":
        self.components[component.name] = component
        component.launch(self)
        return component

    def connect(self, switch: OpenFlowSwitch) -> None:
        self.endpoint.connect_switch(switch)
        self.bus.publish(Event("ConnectionUp", {"dpid": switch.dpid,
                                                "switch": switch}))

    def _on_packet_in(self, dpid: str, message: PacketIn) -> None:
        self.bus.publish(Event("PacketIn", {"dpid": dpid, "msg": message}))


class Component:
    """Base POX-style component."""

    name = "component"

    def launch(self, controller: POXController) -> None:
        self.controller = controller


class L2LearningComponent(Component):
    """Classic l2_learning: learn src MACs, flood unknown destinations,
    install exact-match forwarding entries for known ones."""

    name = "l2_learning"

    def __init__(self, flow_priority: int = 10, idle_timeout: float = 0.0):
        self.tables: dict[str, dict[str, str]] = {}
        self.flow_priority = flow_priority
        self.idle_timeout = idle_timeout
        self.floods = 0
        self.installs = 0

    def launch(self, controller: POXController) -> None:
        super().launch(controller)
        controller.bus.subscribe("PacketIn", self._handle)

    def _handle(self, event: Event) -> None:
        dpid: str = event.data["dpid"]
        message: PacketIn = event.data["msg"]
        packet: Packet = message.packet
        if packet is None:
            return
        table = self.tables.setdefault(dpid, {})
        table[packet.eth_src] = message.in_port
        out_port = table.get(packet.eth_dst)
        endpoint = self.controller.endpoint
        if out_port is None:
            self.floods += 1
            endpoint.send_packet_out(dpid, packet, message.in_port,
                                     [ActionOutput(OFPP_FLOOD)])
            return
        self.installs += 1
        endpoint.send_flow_mod(
            dpid, match=Match(dl_dst=packet.eth_dst),
            actions=[ActionOutput(out_port)],
            priority=self.flow_priority, idle_timeout=self.idle_timeout,
            cookie="l2")
        endpoint.send_packet_out(dpid, packet, message.in_port,
                                 [ActionOutput(out_port)])


class TopologyComponent(Component):
    """Topology bookkeeping.

    Real POX discovers links with LLDP; the emulated equivalent is told
    the topology by the domain when links are created (the information
    content is identical and deterministic).
    """

    name = "topology"

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    def launch(self, controller: POXController) -> None:
        super().launch(controller)
        controller.bus.subscribe("ConnectionUp", self._on_up)

    def _on_up(self, event: Event) -> None:
        self.graph.add_node(event.data["dpid"])

    def add_link(self, src_dpid: str, src_port: str, dst_dpid: str,
                 dst_port: str, *, delay: float = 1.0) -> None:
        self.graph.add_edge(src_dpid, dst_dpid, src_port=src_port,
                            dst_port=dst_port, delay=delay)
        self.graph.add_edge(dst_dpid, src_dpid, src_port=dst_port,
                            dst_port=src_port, delay=delay)

    def shortest_path(self, src: str, dst: str) -> list[str]:
        return nx.shortest_path(self.graph, src, dst, weight="delay")

    def port_towards(self, src: str, dst: str) -> str:
        return self.graph.edges[src, dst]["src_port"]

    def ingress_port(self, src: str, dst: str) -> str:
        return self.graph.edges[src, dst]["dst_port"]


class PathPusherComponent(Component):
    """Install a matched path of flows across the legacy network.

    The UNIFY adapter calls :meth:`push_path` with edge ports and an
    optional VLAN (the chain tag): flows are installed hop by hop and
    can be removed again by cookie.
    """

    name = "path_pusher"

    def __init__(self, topology: TopologyComponent, priority: int = 200):
        self.topology = topology
        self.priority = priority
        self.paths_installed = 0

    def push_path(self, *, ingress_dpid: str, ingress_port: str,
                  egress_dpid: str, egress_port: str,
                  match_vlan: Optional[int] = None,
                  flowclass: str = "", cookie: str = "",
                  strip_vlan_at_egress: bool = False) -> list[str]:
        """Returns the dpid path; raises ``networkx.NetworkXNoPath``."""
        endpoint = self.controller.endpoint
        path = self.topology.shortest_path(ingress_dpid, egress_dpid)
        in_port = ingress_port
        for index, dpid in enumerate(path):
            if index < len(path) - 1:
                out_port = self.topology.port_towards(dpid, path[index + 1])
            else:
                out_port = egress_port
            base = Match.from_flowclass(flowclass, in_port=in_port)
            if match_vlan is not None:
                base = Match(**{**base.to_dict(), "dl_vlan": match_vlan})
            actions = []
            if (strip_vlan_at_egress and index == len(path) - 1
                    and match_vlan is not None):
                actions.append(ActionPopVlan())
            actions.append(ActionOutput(out_port))
            endpoint.send_flow_mod(dpid, match=base, actions=actions,
                                   priority=self.priority, cookie=cookie)
            if index < len(path) - 1:
                in_port = self.topology.ingress_port(dpid, path[index + 1])
        self.paths_installed += 1
        return path

    def remove_by_cookie(self, cookie: str) -> None:
        for dpid in self.controller.endpoint.connected_dpids():
            self.controller.endpoint.delete_flows(dpid, cookie=cookie)
