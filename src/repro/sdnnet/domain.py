"""The legacy SDN network domain.

Plain OpenFlow switches (no NF hosting) under a POX controller.  In
Fig. 1 this domain transits traffic between the others; its domain view
advertises ``SDN-SWITCH`` infra nodes so the mapping layer routes hops
*through* it but never places NFs on it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.netem.network import Network
from repro.netem.node import Host
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType, InfraType, ResourceVector
from repro.openflow.switch import OpenFlowSwitch
from repro.sdnnet.pox import (
    L2LearningComponent,
    PathPusherComponent,
    POXController,
    TopologyComponent,
)


class SDNDomain:
    """A legacy OpenFlow network under POX control."""

    domain_type = DomainType.SDN

    def __init__(self, name: str, network: Network, *,
                 switch_ids: Sequence[str] = (),
                 links: Iterable[tuple[str, str]] = (),
                 link_bandwidth: float = 10_000.0, link_delay: float = 0.5,
                 enable_l2_learning: bool = False):
        self.name = name
        self.network = network
        self.link_bandwidth = link_bandwidth
        self.link_delay = link_delay
        self.switches: dict[str, OpenFlowSwitch] = {}
        self.sap_hosts: dict[str, Host] = {}
        self._links: list[tuple[str, str, str, str]] = []
        self._link_params: dict[tuple[str, str], tuple[float, float]] = {}
        self._handoff_ports: dict[str, tuple[str, str]] = {}
        self.pox = POXController(f"{name}-pox", simulator=network.simulator)
        self.topology = self.pox.register(TopologyComponent())
        self.path_pusher = self.pox.register(PathPusherComponent(self.topology))
        if enable_l2_learning:
            self.pox.register(L2LearningComponent())
        for switch_id in switch_ids:
            self.add_switch(switch_id)
        for src, dst in links:
            self.add_link(src, dst)

    # -- topology construction ------------------------------------------------

    def add_switch(self, switch_id: str) -> OpenFlowSwitch:
        switch = OpenFlowSwitch(switch_id, self.network.simulator,
                                forwarding_delay_ms=0.005)
        self.network.add(switch)
        self.switches[switch_id] = switch
        self.pox.connect(switch)
        return switch

    def add_link(self, src: str, dst: str, *,
                 bandwidth: Optional[float] = None,
                 delay: Optional[float] = None) -> None:
        port_a, port_b = f"to-{dst}", f"to-{src}"
        effective_bw = bandwidth if bandwidth is not None else self.link_bandwidth
        effective_delay = delay if delay is not None else self.link_delay
        self.network.connect(src, port_a, dst, port_b,
                             bandwidth_mbps=effective_bw,
                             delay_ms=effective_delay)
        self._links.append((src, port_a, dst, port_b))
        self._link_params[(src, dst)] = (effective_bw, effective_delay)
        self.topology.add_link(src, port_a, dst, port_b,
                               delay=effective_delay)

    def add_sap(self, sap_id: str, switch_id: str) -> Host:
        host = self.network.add_host(f"{self.name}-host-{sap_id}")
        port = f"sap-{sap_id}"
        self.network.connect(host.id, "0", switch_id, port,
                             bandwidth_mbps=self.link_bandwidth, delay_ms=0.1)
        self.sap_hosts[sap_id] = host
        self._handoff_ports[sap_id] = (switch_id, port)
        return host

    def add_handoff(self, tag: str, switch_id: str) -> tuple[str, str]:
        port = f"sap-{tag}"
        self._handoff_ports[tag] = (switch_id, port)
        return switch_id, port

    def handoff(self, tag: str) -> tuple[str, str]:
        return self._handoff_ports[tag]

    # -- resource description ---------------------------------------------------

    def domain_view(self) -> NFFG:
        view = NFFG(id=f"{self.name}-view", name=f"SDN domain {self.name}")
        for switch_id, switch in self.switches.items():
            infra = view.add_infra(
                switch_id, infra_type=InfraType.SDN_SWITCH,
                domain=self.domain_type,
                resources=ResourceVector(bandwidth=self.link_bandwidth * 10,
                                         delay=0.005))
            for port_id in switch.links:
                infra.add_port(port_id)
        for src, port_a, dst, port_b in self._links:
            physical = self.network.link_between(src, dst)
            if physical is not None and not physical.up:
                continue  # failed links disappear from the view
            bandwidth, delay = self._link_params.get(
                (src, dst), (self.link_bandwidth, self.link_delay))
            view.add_link(src, port_a, dst, port_b,
                          id=f"{self.name}-{src}-{dst}",
                          bandwidth=bandwidth, delay=delay)
        for sap_id in self.sap_hosts:
            sap = view.add_sap(sap_id)
            switch_id, port = self._handoff_ports[sap_id]
            view.infra(switch_id).port(port).sap_tag = sap_id
            view.add_link(sap_id, list(sap.ports)[0], switch_id, port,
                          id=f"sl-{self.name}-{sap_id}",
                          bandwidth=self.link_bandwidth, delay=0.1)
        for tag, (switch_id, port) in self._handoff_ports.items():
            if tag in self.sap_hosts:
                continue
            infra = view.infra(switch_id)
            if not infra.has_port(port):
                infra.add_port(port)
            infra.port(port).sap_tag = tag
        return view

    def __repr__(self) -> str:
        return f"<SDNDomain {self.name}: {len(self.switches)} switches>"
