"""The Unify virtualizer: YANG-modelled virtual views.

A *virtualizer* (green box in Fig. 1 of the paper) presents a virtual
view — an arbitrary interconnection of BiS-BiS nodes — to its manager
(a resource orchestrator).  The manager programs the view by assigning
NF instances to BiS-BiS nodes and editing their flow tables; the edits
travel as YANG-tree diffs over the Unify interface.

- :mod:`repro.virtualizer.model` — the YANG schema and a typed wrapper;
- :mod:`repro.virtualizer.convert` — NFFG <-> virtualizer conversion;
- :mod:`repro.virtualizer.views` — view-generation policies (single
  BiS-BiS, full topology, filtered).
"""

from repro.virtualizer.model import Virtualizer, virtualizer_schema
from repro.virtualizer.convert import nffg_to_virtualizer, virtualizer_to_nffg
from repro.virtualizer.views import (
    FullTopologyView,
    SingleBiSBiSView,
    ViewPolicy,
)

__all__ = [
    "Virtualizer",
    "virtualizer_schema",
    "nffg_to_virtualizer",
    "virtualizer_to_nffg",
    "ViewPolicy",
    "SingleBiSBiSView",
    "FullTopologyView",
]
