"""The virtualizer YANG schema and a typed convenience wrapper.

The schema mirrors the UNIFY ``virtualizer.yang`` structure (condensed
to the parts the control plane exercises)::

    virtualizer
      +- id, name
      +- nodes/node[id]
      |    +- id, name, type, domain
      |    +- ports/port[id] (id, name, port_type, sap)
      |    +- resources (cpu, mem, storage, bandwidth, delay)
      |    +- capabilities/supported_NFs/nf[type]
      |    +- NF_instances/node[id]
      |    |     (id, name, type, deployment_type, status,
      |    |      ports/port[id], resources)
      |    +- flowtable/flowentry[id]
      |          (id, port, match, action, out, hop_id,
      |           resources (bandwidth, delay))
      +- links/link[id]
           (id, src_node, src_port, dst_node, dst_port,
            resources (delay, bandwidth))
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.yang.data import DataNode, data_from_dict
from repro.yang.schema import Container, Leaf, LeafType, YangList

_SCHEMA: Optional[Container] = None


def _resources_container(name: str = "resources") -> Container:
    return Container(name, [
        Leaf("cpu", LeafType.DECIMAL),
        Leaf("mem", LeafType.DECIMAL),
        Leaf("storage", LeafType.DECIMAL),
        Leaf("bandwidth", LeafType.DECIMAL),
        Leaf("delay", LeafType.DECIMAL),
    ])


def _ports_container() -> Container:
    return Container("ports", [
        YangList("port", key="id", children=[
            Leaf("id"),
            Leaf("name"),
            Leaf("port_type", LeafType.ENUM,
                 enum_values=("port-abstract", "port-sap")),
            Leaf("sap"),
        ]),
    ])


def virtualizer_schema() -> Container:
    """The (memoized) virtualizer schema tree."""
    global _SCHEMA
    if _SCHEMA is not None:
        return _SCHEMA
    nf_instance = YangList("node", key="id", children=[
        Leaf("id"),
        Leaf("name"),
        Leaf("type", mandatory=True),
        Leaf("deployment_type"),
        Leaf("status"),
        _ports_container(),
        _resources_container(),
    ])
    flowentry = YangList("flowentry", key="id", children=[
        Leaf("id"),
        Leaf("port", mandatory=True),
        Leaf("match"),
        Leaf("action"),
        Leaf("out"),
        Leaf("hop_id"),
        _resources_container(),
    ])
    node = YangList("node", key="id", children=[
        Leaf("id"),
        Leaf("name"),
        Leaf("type"),
        Leaf("domain"),
        Leaf("cost_per_cpu", LeafType.DECIMAL),
        _ports_container(),
        _resources_container(),
        Container("capabilities", [
            Container("supported_NFs", [
                YangList("nf", key="type", children=[Leaf("type")]),
            ]),
        ]),
        Container("NF_instances", [nf_instance]),
        Container("flowtable", [flowentry]),
    ])
    link = YangList("link", key="id", children=[
        Leaf("id"),
        Leaf("src_node"), Leaf("src_port"),
        Leaf("dst_node"), Leaf("dst_port"),
        _resources_container(),
    ])
    _SCHEMA = Container("virtualizer", [
        Leaf("id", mandatory=True),
        Leaf("name"),
        Container("nodes", [node]),
        Container("links", [link]),
    ])
    return _SCHEMA


class Virtualizer:
    """Typed wrapper over a virtualizer data tree.

    All mutating helpers keep the underlying :class:`DataNode` valid, so
    a Virtualizer can always be diffed/serialized directly.
    """

    def __init__(self, id: str, name: str = "", tree: Optional[DataNode] = None):
        if tree is None:
            tree = DataNode(virtualizer_schema())
            tree.set_leaf("id", id)
            tree.set_leaf("name", name or id)
        self.tree = tree

    # -- identity ----------------------------------------------------------

    @property
    def id(self) -> str:
        return self.tree.get("id")

    @property
    def name(self) -> str:
        return self.tree.get("name", "")

    # -- nodes -------------------------------------------------------------

    def add_node(self, node_id: str, *, name: str = "", type: str = "BiSBiS",
                 domain: str = "VIRTUAL", cpu: float = 0.0, mem: float = 0.0,
                 storage: float = 0.0, bandwidth: float = 0.0,
                 delay: float = 0.0, cost_per_cpu: float = 1.0) -> DataNode:
        holder = self.tree.container("nodes").list_node("node")
        node = holder.add_instance(node_id)
        node.set_leaf("name", name or node_id)
        node.set_leaf("type", type)
        node.set_leaf("domain", domain)
        node.set_leaf("cost_per_cpu", cost_per_cpu)
        resources = node.container("resources")
        resources.set_leaf("cpu", cpu)
        resources.set_leaf("mem", mem)
        resources.set_leaf("storage", storage)
        resources.set_leaf("bandwidth", bandwidth)
        resources.set_leaf("delay", delay)
        return node

    def node(self, node_id: str) -> DataNode:
        return self.tree.container("nodes").list_node("node").instance(node_id)

    def has_node(self, node_id: str) -> bool:
        return self.tree.container("nodes").list_node("node").has_instance(node_id)

    def nodes(self) -> Iterator[DataNode]:
        return self.tree.container("nodes").list_node("node").instances()

    def node_ids(self) -> list[str]:
        return self.tree.container("nodes").list_node("node").instance_keys()

    # -- ports ---------------------------------------------------------------

    @staticmethod
    def add_port(owner: DataNode, port_id: str, *, name: str = "",
                 sap: Optional[str] = None) -> DataNode:
        port = owner.container("ports").list_node("port").add_instance(port_id)
        port.set_leaf("name", name or port_id)
        port.set_leaf("port_type", "port-sap" if sap else "port-abstract")
        if sap:
            port.set_leaf("sap", sap)
        return port

    @staticmethod
    def ports(owner: DataNode) -> Iterator[DataNode]:
        return owner.container("ports").list_node("port").instances()

    # -- capabilities -----------------------------------------------------------

    def set_supported_nfs(self, node_id: str, types: list[str]) -> None:
        holder = (self.node(node_id).container("capabilities")
                  .container("supported_NFs").list_node("nf"))
        for key in list(holder.instance_keys()):
            holder.remove_instance(key)
        for nf_type in types:
            holder.add_instance(nf_type)

    def supported_nfs(self, node_id: str) -> list[str]:
        holder = (self.node(node_id).container("capabilities")
                  .container("supported_NFs").list_node("nf"))
        return holder.instance_keys()

    # -- NF instances ---------------------------------------------------------

    def add_nf_instance(self, node_id: str, nf_id: str, *, type: str,
                        name: str = "", deployment_type: str = "",
                        status: str = "initialized", cpu: float = 0.0,
                        mem: float = 0.0, storage: float = 0.0) -> DataNode:
        holder = self.node(node_id).container("NF_instances").list_node("node")
        nf = holder.add_instance(nf_id)
        nf.set_leaf("name", name or nf_id)
        nf.set_leaf("type", type)
        if deployment_type:
            nf.set_leaf("deployment_type", deployment_type)
        nf.set_leaf("status", status)
        resources = nf.container("resources")
        resources.set_leaf("cpu", cpu)
        resources.set_leaf("mem", mem)
        resources.set_leaf("storage", storage)
        return nf

    def nf_instances(self, node_id: str) -> Iterator[DataNode]:
        return self.node(node_id).container("NF_instances").list_node("node").instances()

    def remove_nf_instance(self, node_id: str, nf_id: str) -> None:
        self.node(node_id).container("NF_instances").list_node("node") \
            .remove_instance(nf_id)

    # -- flowtable ---------------------------------------------------------------

    def add_flowentry(self, node_id: str, entry_id: str, *, port: str,
                      out: str, match: str = "", action: str = "",
                      bandwidth: float = 0.0, delay: float = 0.0,
                      hop_id: str = "") -> DataNode:
        holder = self.node(node_id).container("flowtable").list_node("flowentry")
        entry = holder.add_instance(entry_id)
        entry.set_leaf("port", port)
        entry.set_leaf("out", out)
        if match:
            entry.set_leaf("match", match)
        if action:
            entry.set_leaf("action", action)
        if hop_id:
            entry.set_leaf("hop_id", hop_id)
        resources = entry.container("resources")
        resources.set_leaf("bandwidth", bandwidth)
        resources.set_leaf("delay", delay)
        return entry

    def flowentries(self, node_id: str) -> Iterator[DataNode]:
        return self.node(node_id).container("flowtable").list_node("flowentry").instances()

    # -- links -----------------------------------------------------------------

    def add_link(self, link_id: str, *, src_node: str, src_port: str,
                 dst_node: str, dst_port: str, delay: float = 0.0,
                 bandwidth: float = 0.0) -> DataNode:
        holder = self.tree.container("links").list_node("link")
        link = holder.add_instance(link_id)
        link.set_leaf("src_node", src_node)
        link.set_leaf("src_port", src_port)
        link.set_leaf("dst_node", dst_node)
        link.set_leaf("dst_port", dst_port)
        resources = link.container("resources")
        resources.set_leaf("delay", delay)
        resources.set_leaf("bandwidth", bandwidth)
        return link

    def links(self) -> Iterator[DataNode]:
        return self.tree.container("links").list_node("link").instances()

    # -- whole-tree operations ----------------------------------------------------

    def copy(self) -> "Virtualizer":
        return Virtualizer(self.id, tree=self.tree.copy())

    def to_dict(self) -> dict[str, Any]:
        return self.tree.to_dict()

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Virtualizer":
        tree = data_from_dict(virtualizer_schema(), data)
        return cls(tree.get("id"), tree=tree)

    def validate(self) -> list[str]:
        return self.tree.validate()

    def __repr__(self) -> str:
        return f"<Virtualizer {self.id}: {len(self.node_ids())} nodes>"
