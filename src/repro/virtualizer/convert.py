"""NFFG <-> virtualizer conversion.

Orchestration logic works on NFFGs (graphs are convenient for
embedding); the wire format of the Unify interface is the virtualizer
tree.  These converters bridge the two without information loss for the
control-plane-relevant content: infra nodes + ports + capacities,
supported NF sets, placed NF instances, flow entries, links, and SAPs
(encoded as ``port-sap`` ports).
"""

from __future__ import annotations

from repro.nffg.graph import NFFG
from repro.nffg.model import (
    DomainType,
    InfraType,
    ResourceVector,
)
from repro.virtualizer.model import Virtualizer


def nffg_to_virtualizer(nffg: NFFG, virtualizer_id: str | None = None) -> Virtualizer:
    """Encode the infra-level content of a (possibly mapped) NFFG."""
    virt = Virtualizer(virtualizer_id or nffg.id, name=nffg.name)
    for infra in nffg.infras:
        node = virt.add_node(
            infra.id, name=infra.name, type=infra.infra_type.value,
            domain=infra.domain.value,
            cpu=infra.resources.cpu, mem=infra.resources.mem,
            storage=infra.resources.storage,
            bandwidth=infra.resources.bandwidth, delay=infra.resources.delay,
            cost_per_cpu=infra.cost_per_cpu)
        for port in infra.ports.values():
            Virtualizer.add_port(node, port.id, name=port.name,
                                 sap=port.sap_tag)
        if infra.supported_types:
            virt.set_supported_nfs(infra.id, sorted(infra.supported_types))
        for nf in nffg.nfs_on(infra.id):
            instance = virt.add_nf_instance(
                infra.id, nf.id, type=nf.functional_type, name=nf.name,
                deployment_type=nf.deployment_type, status=nf.status,
                cpu=nf.resources.cpu, mem=nf.resources.mem,
                storage=nf.resources.storage)
            for nf_port in nf.ports.values():
                bound = nffg.infra_port_of_nf(nf.id, nf_port.id)
                Virtualizer.add_port(instance, nf_port.id,
                                     name=bound[1] if bound else nf_port.name)
        entry_seq = 0
        for port, rule in infra.iter_flowrules():
            entry_seq += 1
            out_port = rule.action_fields().get("output", "")
            virt.add_flowentry(
                infra.id, f"{infra.id}-fe{entry_seq}", port=port.id,
                out=out_port, match=rule.match, action=rule.action,
                bandwidth=rule.bandwidth, delay=rule.delay,
                hop_id=rule.hop_id or "")
    seen_pairs: set[frozenset[str]] = set()
    for link in nffg.links:
        if not (nffg.has_node(link.src_node) and nffg.has_node(link.dst_node)):
            continue
        src, dst = nffg.node(link.src_node), nffg.node(link.dst_node)
        if src.type.value != "INFRA" or dst.type.value != "INFRA":
            continue  # SAP attachments are encoded as port-sap ports
        pair = frozenset((f"{link.src_node}.{link.src_port}",
                          f"{link.dst_node}.{link.dst_port}"))
        if pair in seen_pairs:
            continue  # reverse direction of a bidirectional link
        seen_pairs.add(pair)
        virt.add_link(link.id, src_node=link.src_node, src_port=link.src_port,
                      dst_node=link.dst_node, dst_port=link.dst_port,
                      delay=link.delay, bandwidth=link.bandwidth)
    return virt


def virtualizer_to_nffg(virt: Virtualizer) -> NFFG:
    """Decode a virtualizer tree back into an NFFG resource view."""
    nffg = NFFG(id=virt.id, name=virt.name)
    for node in virt.nodes():
        infra = nffg.add_infra(
            node.get("id"), name=node.get("name", ""),
            infra_type=InfraType(node.get("type", "BiSBiS")),
            domain=DomainType(node.get("domain", "VIRTUAL")),
            resources=_read_resources(node),
            supported_types=virt.supported_nfs(node.get("id")),
            cost_per_cpu=node.get("cost_per_cpu", 1.0))
        for port in Virtualizer.ports(node):
            infra.add_port(port.get("id"), name=port.get("name", ""),
                           sap_tag=port.get("sap"))
        for instance in virt.nf_instances(infra.id):
            nf = nffg.add_nf(
                instance.get("id"), instance.get("type"),
                name=instance.get("name", ""),
                deployment_type=instance.get("deployment_type", ""),
                resources=_read_resources(instance))
            nf.status = instance.get("status", "initialized")
            port_pairs = []
            for nf_port in Virtualizer.ports(instance):
                nf.add_port(nf_port.get("id"))
                infra_port_id = nf_port.get("name") or f"{nf.id}-{nf_port.get('id')}"
                if not infra.has_port(infra_port_id):
                    infra.add_port(infra_port_id)
                port_pairs.append((nf_port.get("id"), infra_port_id))
            if port_pairs:
                nffg.place_nf(nf.id, infra.id, port_pairs=port_pairs)
        for entry in virt.flowentries(infra.id):
            in_port = entry.get("port")
            if in_port and infra.has_port(in_port):
                resources = entry.container("resources") \
                    if entry.has_child("resources") else None
                infra.port(in_port).add_flowrule(
                    match=entry.get("match", "") or f"in_port={in_port}",
                    action=entry.get("action", "") or f"output={entry.get('out', '')}",
                    bandwidth=resources.get("bandwidth", 0.0) if resources else 0.0,
                    delay=resources.get("delay", 0.0) if resources else 0.0,
                    hop_id=entry.get("hop_id") or None)
    # SAP nodes from port-sap ports
    for node in virt.nodes():
        for port in Virtualizer.ports(node):
            sap_tag = port.get("sap")
            if not sap_tag:
                continue
            if not nffg.has_node(sap_tag):
                sap = nffg.add_sap(sap_tag)
                nffg.add_link(sap_tag, list(sap.ports)[0],
                              node.get("id"), port.get("id"),
                              id=f"sl-{sap_tag}-{node.get('id')}",
                              bandwidth=0.0, delay=0.0)
    for link in virt.links():
        resources = link.container("resources") if link.has_child("resources") else None
        nffg.add_link(link.get("src_node"), link.get("src_port"),
                      link.get("dst_node"), link.get("dst_port"),
                      id=link.get("id"),
                      delay=resources.get("delay", 0.0) if resources else 0.0,
                      bandwidth=resources.get("bandwidth", 0.0) if resources else 0.0)
    return nffg


def _read_resources(node) -> ResourceVector:
    if not node.has_child("resources"):
        return ResourceVector()
    resources = node.container("resources")
    return ResourceVector(
        cpu=resources.get("cpu", 0.0) or 0.0,
        mem=resources.get("mem", 0.0) or 0.0,
        storage=resources.get("storage", 0.0) or 0.0,
        bandwidth=resources.get("bandwidth", 0.0) or 0.0,
        delay=resources.get("delay", 0.0) or 0.0)
