"""View-generation policies.

A domain virtualizer decides *how much* of the underlying resources a
client may see.  The paper highlights the extreme point — a single
BiS-BiS hiding the whole domain ("then its orchestration task is
trivial... delegation of all resource management to the lower layer") —
next to full topology views for clients that want to optimize placement
themselves.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType, InfraType, ResourceVector
from repro.nffg.ops import available_resources, remaining_nffg


class ViewPolicy(abc.ABC):
    """Strategy producing a client view NFFG from a domain view NFFG."""

    @abc.abstractmethod
    def build_view(self, domain_view: NFFG, view_id: str) -> NFFG:
        """Return a fresh NFFG the client may plan against."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class FullTopologyView(ViewPolicy):
    """Expose the complete (remaining-resource) domain topology."""

    def build_view(self, domain_view: NFFG, view_id: str) -> NFFG:
        return remaining_nffg(domain_view, new_id=view_id)


class SingleBiSBiSView(ViewPolicy):
    """Collapse the whole domain into one BiS-BiS node.

    - capacity = sum of free infra capacities (cpu/mem/storage),
    - internal bandwidth = min cut is approximated by the smallest
      free link bandwidth on the domain's spanning paths (conservative:
      minimum over all links),
    - internal delay = diameter delay (worst-case SAP-to-SAP),
    - supported NF types = union over member BiS-BiS nodes,
    - every SAP of the domain becomes a sap-tagged port.
    """

    def __init__(self, bisbis_id: Optional[str] = None):
        self.bisbis_id = bisbis_id

    def build_view(self, domain_view: NFFG, view_id: str) -> NFFG:
        view = NFFG(id=view_id, name=f"single BiS-BiS of {domain_view.id}")
        total = ResourceVector()
        supported: set[str] = set()
        hosting = [infra for infra in domain_view.infras
                   if infra.infra_type != InfraType.SDN_SWITCH]
        for infra in hosting:
            free = available_resources(domain_view, infra.id)
            total = total + ResourceVector(cpu=max(free.cpu, 0.0),
                                           mem=max(free.mem, 0.0),
                                           storage=max(free.storage, 0.0))
            supported |= infra.supported_types
        link_bws = [link.available_bandwidth for link in domain_view.links
                    if link.available_bandwidth > 0]
        internal_bw = min(link_bws) if link_bws else 0.0
        internal_delay = _diameter_delay(domain_view)
        bisbis = view.add_infra(
            self.bisbis_id or f"{domain_view.id}-bisbis",
            infra_type=InfraType.BISBIS, domain=DomainType.VIRTUAL,
            resources=ResourceVector(cpu=total.cpu, mem=total.mem,
                                     storage=total.storage,
                                     bandwidth=internal_bw,
                                     delay=internal_delay),
            supported_types=sorted(supported))
        for sap in domain_view.saps:
            port = bisbis.add_port(f"sap-{sap.id}", sap_tag=sap.id)
            new_sap = view.add_sap(sap.id, binding=sap.binding)
            view.add_link(sap.id, list(new_sap.ports)[0], bisbis.id, port.id,
                          id=f"sl-{sap.id}", bandwidth=internal_bw, delay=0.0)
        # preserve inter-domain hand-off ports that are not user SAPs
        for infra in domain_view.infras:
            for port in infra.ports.values():
                if port.sap_tag and not domain_view.has_node(port.sap_tag):
                    if not bisbis.has_port(f"sap-{port.sap_tag}"):
                        bisbis.add_port(f"sap-{port.sap_tag}",
                                        sap_tag=port.sap_tag)
        return view


class PerDomainBiSBiSView(ViewPolicy):
    """One BiS-BiS per technology domain.

    The middle ground the paper's "arbitrary interconnection of BiS-BiS
    nodes" allows: the client sees domain boundaries (so it can spread a
    chain across providers deliberately) but none of the intra-domain
    detail.  Domains are linked where any inter-domain hand-off exists
    between them.
    """

    def build_view(self, domain_view: NFFG, view_id: str) -> NFFG:
        from collections import defaultdict

        view = NFFG(id=view_id, name=f"per-domain view of {domain_view.id}")
        members: dict = defaultdict(list)
        for infra in domain_view.infras:
            members[infra.domain].append(infra)
        infra_domain = {infra.id: infra.domain
                        for infra in domain_view.infras}
        aggregate_id = {}
        for domain, infras in members.items():
            total = ResourceVector()
            supported: set[str] = set()
            for infra in infras:
                if infra.infra_type == InfraType.SDN_SWITCH:
                    continue
                free = available_resources(domain_view, infra.id)
                total = total + ResourceVector(cpu=max(free.cpu, 0.0),
                                               mem=max(free.mem, 0.0),
                                               storage=max(free.storage, 0.0))
                supported |= infra.supported_types
            link_bws = [link.available_bandwidth
                        for link in domain_view.links
                        if infra_domain.get(link.src_node) == domain
                        and infra_domain.get(link.dst_node) == domain
                        and link.available_bandwidth > 0]
            node_id = f"{view_id}-{domain.value}"
            aggregate_id[domain] = node_id
            infra_type = (InfraType.SDN_SWITCH
                          if all(i.infra_type == InfraType.SDN_SWITCH
                                 for i in infras) else InfraType.BISBIS)
            view.add_infra(
                node_id, infra_type=infra_type, domain=domain,
                resources=ResourceVector(
                    cpu=total.cpu, mem=total.mem, storage=total.storage,
                    bandwidth=min(link_bws) if link_bws else 10_000.0,
                    delay=_domain_diameter_delay(domain_view, infras)),
                supported_types=sorted(supported))
        # SAPs keep their identity, attached to their domain's aggregate
        for sap in domain_view.saps:
            bindings = domain_view.sap_bindings()
            if sap.id not in bindings:
                continue
            host_infra, _ = bindings[sap.id]
            domain = infra_domain[host_infra]
            aggregate = view.infra(aggregate_id[domain])
            port = aggregate.add_port(f"sap-{sap.id}", sap_tag=sap.id)
            new_sap = view.add_sap(sap.id, binding=sap.binding)
            view.add_link(sap.id, list(new_sap.ports)[0], aggregate.id,
                          port.id, id=f"sl-{view_id}-{sap.id}",
                          bandwidth=aggregate.resources.bandwidth,
                          delay=0.0)
        # inter-domain connectivity: one link per domain pair that has
        # at least one physical inter-domain link
        pair_best: dict[frozenset, tuple[float, float]] = {}
        for link in domain_view.links:
            src_domain = infra_domain.get(link.src_node)
            dst_domain = infra_domain.get(link.dst_node)
            if (src_domain is None or dst_domain is None
                    or src_domain == dst_domain):
                continue
            key = frozenset((src_domain, dst_domain))
            bandwidth, delay = pair_best.get(key, (0.0, float("inf")))
            pair_best[key] = (max(bandwidth, link.available_bandwidth),
                              min(delay, link.delay))
        for key, (bandwidth, delay) in pair_best.items():
            domain_a, domain_b = sorted(key, key=lambda d: d.value)
            node_a = view.infra(aggregate_id[domain_a])
            node_b = view.infra(aggregate_id[domain_b])
            port_a = node_a.add_port(f"to-{node_b.id}")
            port_b = node_b.add_port(f"to-{node_a.id}")
            view.add_link(node_a.id, port_a.id, node_b.id, port_b.id,
                          id=f"{view_id}-{domain_a.value}-{domain_b.value}",
                          bandwidth=bandwidth, delay=delay)
        return view


def _domain_diameter_delay(domain_view: NFFG, infras) -> float:
    member_ids = {infra.id for infra in infras}
    sliced = NFFG(id="tmp-slice")
    for infra in infras:
        sliced.add_node_copy(infra)
    for link in domain_view.links:
        if link.src_node in member_ids and link.dst_node in member_ids:
            try:
                sliced.add_edge_copy(link)
            except Exception:  # noqa: BLE001 - tolerate dangling ports
                continue
    return _diameter_delay(sliced)


class FilteredView(ViewPolicy):
    """Expose only a whitelisted subset of infra nodes (policy slices)."""

    def __init__(self, allowed_infras: Sequence[str]):
        self.allowed = set(allowed_infras)

    def build_view(self, domain_view: NFFG, view_id: str) -> NFFG:
        full = remaining_nffg(domain_view, new_id=view_id)
        for nf in list(full.nfs):
            host = full.host_of(nf.id)
            if host is not None and host not in self.allowed:
                full.remove_node(nf.id)
        for infra in list(full.infras):
            if infra.id not in self.allowed:
                full.remove_node(infra.id)
        for sap in list(full.saps):
            if not any(True for _ in full.edges_of(sap.id)):
                full.remove_node(sap.id)
        return full


def _diameter_delay(view: NFFG) -> float:
    """Worst-case shortest-path delay between any two infra nodes."""
    import networkx as nx

    topo = view.infra_topology()
    if topo.number_of_nodes() <= 1:
        return 0.1
    try:
        lengths = dict(nx.all_pairs_dijkstra_path_length(topo, weight="delay"))
    except Exception:  # pragma: no cover - defensive
        return 0.1
    worst = 0.0
    for src, targets in lengths.items():
        for dst, dist in targets.items():
            worst = max(worst, dist)
    return max(worst, 0.1)
