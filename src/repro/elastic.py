"""Elastic scaling on top of the orchestrator.

UNIFY's companion demos scaled NFs with load (the "elastic router").
This module reproduces the control loop: watch a service's dataplane
counters (:meth:`~repro.orchestration.escape.EscapeOrchestrator.service_flow_stats`),
compute throughput over the virtual clock, and drive
:meth:`~repro.orchestration.escape.EscapeOrchestrator.update` with a
re-sized service version when thresholds are crossed.

The *what-to-deploy-at-level-N* question is the tenant's: they supply a
``version_builder(level) -> NFFG`` (same service id, more/fewer
workers).  The controller owns *when*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.nffg.graph import NFFG
from repro.orchestration.escape import EscapeOrchestrator
from repro.sim.kernel import Simulator

VersionBuilder = Callable[[int], NFFG]


class ScalingAction(str, enum.Enum):
    NONE = "none"
    OUT = "scale-out"
    IN = "scale-in"
    BLOCKED = "blocked"      #: wanted to scale but update failed


@dataclass(frozen=True)
class ScalingRule:
    """Thresholds for one managed service."""

    metric_hop: str            #: SG hop whose rate is watched
    scale_out_pps: float       #: packets/virtual-second to scale out at
    scale_in_pps: float        #: packets/virtual-second to scale in at
    min_level: int = 1
    max_level: int = 4

    def __post_init__(self):
        if self.scale_in_pps >= self.scale_out_pps:
            raise ValueError("scale_in threshold must be below scale_out")
        if self.min_level < 1 or self.max_level < self.min_level:
            raise ValueError("invalid level bounds")


@dataclass
class ScalingEvent:
    service_id: str
    action: ScalingAction
    level_before: int
    level_after: int
    observed_pps: float
    error: str = ""


@dataclass
class _ManagedService:
    rule: ScalingRule
    version_builder: VersionBuilder
    level: int
    last_packets: int = 0
    last_poll_ms: float = 0.0


class ElasticityController:
    """Threshold-based horizontal scaler for deployed services."""

    def __init__(self, escape: EscapeOrchestrator,
                 simulator: Optional[Simulator] = None):
        self.escape = escape
        self.simulator = simulator or escape.simulator
        if self.simulator is None:
            raise ValueError("elasticity needs the shared simulator")
        self._managed: dict[str, _ManagedService] = {}
        self.events: list[ScalingEvent] = []

    # -- registration ---------------------------------------------------

    def manage(self, service_id: str, rule: ScalingRule,
               version_builder: VersionBuilder,
               initial_level: Optional[int] = None) -> None:
        """Start managing a deployed service.

        ``version_builder(level)`` must return a service NFFG with the
        *same* service id; level ``initial_level`` (default
        ``rule.min_level``) is assumed to be what is currently running.
        """
        if service_id not in self.escape.deployed_services():
            raise ValueError(f"service {service_id!r} is not deployed")
        level = initial_level if initial_level is not None else rule.min_level
        self._managed[service_id] = _ManagedService(
            rule=rule, version_builder=version_builder, level=level,
            last_poll_ms=self.simulator.now)
        # baseline the counters so the first poll measures fresh traffic
        stats = self.escape.service_flow_stats(service_id)
        hop_stats = stats.get(rule.metric_hop, {"packets": 0})
        self._managed[service_id].last_packets = hop_stats["packets"]

    def unmanage(self, service_id: str) -> None:
        self._managed.pop(service_id, None)

    def managed_level(self, service_id: str) -> int:
        return self._managed[service_id].level

    # -- the control loop --------------------------------------------------

    def poll(self) -> list[ScalingEvent]:
        """Evaluate every managed service once; apply scaling actions."""
        fired: list[ScalingEvent] = []
        now = self.simulator.now
        for service_id, state in list(self._managed.items()):
            event = self._evaluate(service_id, state, now)
            if event is not None:
                fired.append(event)
                self.events.append(event)
        return fired

    def _evaluate(self, service_id: str, state: _ManagedService,
                  now: float) -> Optional[ScalingEvent]:
        elapsed_ms = now - state.last_poll_ms
        if elapsed_ms <= 0:
            return None
        stats = self.escape.service_flow_stats(service_id)
        hop_stats = stats.get(state.rule.metric_hop)
        if hop_stats is None:
            return None
        packets = hop_stats["packets"]
        pps = (packets - state.last_packets) / (elapsed_ms / 1000.0)
        state.last_packets = packets
        state.last_poll_ms = now
        rule = state.rule
        if pps >= rule.scale_out_pps and state.level < rule.max_level:
            return self._rescale(service_id, state, state.level + 1,
                                 ScalingAction.OUT, pps)
        if pps <= rule.scale_in_pps and state.level > rule.min_level:
            return self._rescale(service_id, state, state.level - 1,
                                 ScalingAction.IN, pps)
        return None

    def _rescale(self, service_id: str, state: _ManagedService,
                 new_level: int, action: ScalingAction,
                 pps: float) -> ScalingEvent:
        new_version = state.version_builder(new_level)
        if new_version.id != service_id:
            raise ValueError(
                f"version_builder must keep service id {service_id!r}, "
                f"got {new_version.id!r}")
        report = self.escape.update(new_version)
        if report.success:
            before, state.level = state.level, new_level
            # re-baseline: hop counters restart with the new flows
            stats = self.escape.service_flow_stats(service_id)
            hop_stats = stats.get(state.rule.metric_hop, {"packets": 0})
            state.last_packets = hop_stats["packets"]
            return ScalingEvent(service_id=service_id, action=action,
                                level_before=before, level_after=new_level,
                                observed_pps=pps)
        return ScalingEvent(service_id=service_id,
                            action=ScalingAction.BLOCKED,
                            level_before=state.level,
                            level_after=state.level,
                            observed_pps=pps, error=report.error)

    def run_periodically(self, interval_ms: float = 1000.0,
                         rounds: int = 10) -> None:
        """Schedule ``rounds`` polls on the virtual clock."""
        for index in range(1, rounds + 1):
            self.simulator.schedule(index * interval_ms,
                                    lambda: self.poll())
