"""CC — code-scope concurrency rules over this repo's own source.

The control plane is concurrent (dispatcher fan-out, breaker replays,
heal) and its past defects cluster around a handful of mechanical
patterns: sleeping while holding a lock (the PR 4 ``FaultPlan`` delay
bug), mutating a dict while iterating it (the PR 4 ``CAL.reconcile``
bug), acquiring the same two locks in opposite orders, mutable default
arguments, writes to lock-guarded state outside the owning lock,
tracing spans opened without a close path (which orphan every later
span in the trace tree), and desired-state writes the write-ahead
intent journal never saw (which crash recovery can neither replay nor
roll back).
Each pattern is an AST rule here, registered into the normal lint
registry under the ``code`` scope, so ``repro check --self`` gates the
orchestrator's source with the same machinery that gates NFFGs.

Rules receive a :class:`~repro.lint.codescope.CodeModule` via
``ctx.module``; findings carry the file path in ``graph`` and the
source line in ``line``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.codescope import (
    dotted_name,
    is_lock_expr,
    iter_body_nodes,
    self_attr,
)
from repro.lint.diagnostics import Finding, Severity
from repro.lint.engine import LintContext
from repro.lint.registry import default_registry

_registry = default_registry()
rule = _registry.rule

#: method names that mutate a dict/set (and would raise or corrupt if
#: called on the object currently being iterated)
_CONTAINER_MUTATORS = frozenset({
    "pop", "popitem", "clear", "update", "setdefault",
    "add", "remove", "discard",
})

#: attribute mutators that count as writes for guarded-by enforcement
_WRITE_MUTATORS = _CONTAINER_MUTATORS | frozenset({
    "append", "extend", "insert",
})

#: final call-name segments considered blocking (plus adapter I/O)
_BLOCKING_FINALS = frozenset({"sleep"})
_ADAPTER_IO = frozenset({"install", "fetch_view"})


def _lock_token(expr: ast.AST) -> Optional[str]:
    """Canonical per-class lock identity for a with-item: the final
    name segment of a lock-looking expression (``self._pending_lock``
    and ``cal._pending_lock`` both map to ``_pending_lock``)."""
    if is_lock_expr(expr) is None:
        return None
    target = expr.func if isinstance(expr, ast.Call) else expr
    name = dotted_name(target)
    return name.rsplit(".", 1)[-1] if name else None


def _walk_held(node: ast.AST, held: tuple[str, ...],
               ) -> Iterator[tuple[ast.AST, tuple[str, ...]]]:
    """Yield ``(node, locks held here)`` for every node lexically inside
    ``node``, skipping nested function/lambda/class bodies and growing
    ``held`` through ``with <lock>`` items."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.Lambda, ast.ClassDef)):
        return
    yield node, held
    if isinstance(node, ast.With):
        inner = held
        for item in node.items:
            yield from _walk_held(item.context_expr, inner)
            token = _lock_token(item.context_expr)
            if token is not None:
                inner = inner + (token,)
        for stmt in node.body:
            yield from _walk_held(stmt, inner)
        return
    for child in ast.iter_child_nodes(node):
        yield from _walk_held(child, held)


def _functions(tree: ast.Module) -> Iterator[ast.FunctionDef]:
    """Every function/method in the module, including nested ones."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _blocking_label(call: ast.Call) -> Optional[str]:
    name = dotted_name(call.func)
    if name is not None:
        final = name.rsplit(".", 1)[-1]
        if final in _BLOCKING_FINALS:
            return f"blocking call {name}()"
        if final in _ADAPTER_IO:
            return f"adapter I/O {name}()"
    return None


# ----------------------------------------------------------------------
# CC001 — blocking call while holding a lock
# ----------------------------------------------------------------------

@rule("CC001", "blocking call (sleep / adapter I/O) inside a lock",
      severity=Severity.ERROR, category="code", scope="code")
def check_blocking_under_lock(ctx: LintContext) -> Iterator[Finding]:
    module = ctx.module
    for function in _functions(module.tree):
        for stmt in function.body:
            for node, held in _walk_held(stmt, ()):
                if not held or not isinstance(node, ast.Call):
                    continue
                label = _blocking_label(node)
                if label is not None:
                    yield Finding(
                        f"{function.name}: {label} while holding "
                        f"{list(held)}; release the lock first "
                        "(sleep/I-O under a shared lock serializes "
                        "every other thread behind it)",
                        line=node.lineno)


# ----------------------------------------------------------------------
# CC002 — container mutated while iterating it
# ----------------------------------------------------------------------

def _iteration_base(iter_expr: ast.AST) -> Optional[str]:
    """The dotted name of the container a ``for`` loop iterates
    *directly*, or None when the loop runs over a snapshot (``list()``,
    ``sorted()``, ``.copy()``, a comprehension, ...)."""
    if isinstance(iter_expr, ast.Call):
        func = iter_expr.func
        # d.items() / d.keys() / d.values() iterate the live container
        if (isinstance(func, ast.Attribute)
                and func.attr in ("items", "keys", "values")):
            return dotted_name(func.value)
        return None  # list(d), sorted(d), d.copy(): a snapshot
    return dotted_name(iter_expr)


@rule("CC002", "dict/set mutated while iterating over it",
      severity=Severity.ERROR, category="code", scope="code")
def check_iterate_while_mutate(ctx: LintContext) -> Iterator[Finding]:
    module = ctx.module
    for loop in ast.walk(module.tree):
        if not isinstance(loop, (ast.For, ast.AsyncFor)):
            continue
        base = _iteration_base(loop.iter)
        if base is None:
            continue
        for node in iter_body_nodes(loop.body):
            if isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in _CONTAINER_MUTATORS
                        and dotted_name(func.value) == base):
                    yield Finding(
                        f"{base}.{func.attr}() called while iterating "
                        f"{base} (line {loop.lineno}); iterate a "
                        "snapshot instead", line=node.lineno)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and dotted_name(target.value) == base):
                        yield Finding(
                            f"del {base}[...] while iterating {base} "
                            f"(line {loop.lineno}); iterate a snapshot "
                            "instead", line=node.lineno)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (isinstance(target, ast.Subscript)
                            and dotted_name(target.value) == base):
                        yield Finding(
                            f"{base}[...] assigned while iterating "
                            f"{base} (line {loop.lineno}); inserting a "
                            "new key mid-iteration raises RuntimeError",
                            severity=Severity.WARNING, line=node.lineno)


# ----------------------------------------------------------------------
# CC003 — inconsistent lock acquisition order inside a class
# ----------------------------------------------------------------------

@rule("CC003", "methods of one class nest the same locks in opposite orders",
      severity=Severity.ERROR, category="code", scope="code")
def check_lock_order_consistency(ctx: LintContext) -> Iterator[Finding]:
    module = ctx.module
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        #: (outer, inner) -> (method name, line of first witness)
        pairs: dict[tuple[str, str], tuple[str, int]] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for stmt in method.body:
                for node, held in _walk_held(stmt, ()):
                    if not isinstance(node, ast.With):
                        continue
                    prev = held
                    for item in node.items:
                        token = _lock_token(item.context_expr)
                        if token is None:
                            continue
                        for outer in prev:
                            if outer != token:
                                pairs.setdefault(
                                    (outer, token),
                                    (method.name, item.context_expr.lineno))
                        prev = prev + (token,)
        reported: set[frozenset[str]] = set()
        for (outer, inner), (method_name, lineno) in sorted(
                pairs.items(), key=lambda kv: kv[1][1]):
            if (inner, outer) not in pairs:
                continue
            key = frozenset((outer, inner))
            if key in reported:
                continue
            reported.add(key)
            other_method, other_line = pairs[(inner, outer)]
            yield Finding(
                f"class {cls.name}: {method_name} (line {lineno}) "
                f"acquires {outer!r} then {inner!r} but {other_method} "
                f"(line {other_line}) nests them the other way round — "
                "potential deadlock", line=max(lineno, other_line))


# ----------------------------------------------------------------------
# CC004 — mutable default argument
# ----------------------------------------------------------------------

def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, ast.Call) and not node.args and not node.keywords:
        return isinstance(node.func, ast.Name) \
            and node.func.id in ("list", "dict", "set")
    return False


@rule("CC004", "mutable default argument",
      severity=Severity.ERROR, category="code", scope="code")
def check_mutable_defaults(ctx: LintContext) -> Iterator[Finding]:
    module = ctx.module
    for function in _functions(module.tree):
        defaults = list(function.args.defaults) \
            + [d for d in function.args.kw_defaults if d is not None]
        for default in defaults:
            if _is_mutable_default(default):
                yield Finding(
                    f"{function.name}: mutable default argument is "
                    "shared across calls; default to None and create "
                    "inside", line=default.lineno)


# ----------------------------------------------------------------------
# CC005 — guarded-by annotated state written outside the owning lock
# ----------------------------------------------------------------------

def _guarded_attrs(cls: ast.ClassDef,
                   guarded_lines: dict[int, str]) -> dict[str, str]:
    """attr name -> owning lock, from guarded-by comments on
    ``self.<attr> = ...`` statements anywhere in the class."""
    guarded: dict[str, str] = {}
    for node in ast.walk(cls):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        lock = None
        for lineno in range(node.lineno,
                            (node.end_lineno or node.lineno) + 1):
            if lineno in guarded_lines:
                lock = guarded_lines[lineno]
                break
        if lock is None:
            continue
        for target in targets:
            attr = self_attr(target)
            if attr is not None:
                guarded[attr] = lock
    return guarded


def _written_attrs(node: ast.AST) -> Iterator[tuple[str, str]]:
    """(attr, kind) pairs for every ``self.<attr>`` write in ``node``."""
    if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) \
            else [node.target]
        if isinstance(node, ast.AnnAssign) and node.value is None:
            return
        for target in targets:
            elements = target.elts \
                if isinstance(target, (ast.Tuple, ast.List)) else [target]
            for element in elements:
                attr = self_attr(element)
                if attr is not None:
                    yield attr, "assigned"
                elif isinstance(element, ast.Subscript):
                    attr = self_attr(element.value)
                    if attr is not None:
                        yield attr, "item-assigned"
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            base = target.value if isinstance(target, ast.Subscript) \
                else target
            attr = self_attr(base)
            if attr is not None:
                yield attr, "deleted"
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_MUTATORS:
            attr = self_attr(func.value)
            if attr is not None:
                yield attr, f"mutated via .{func.attr}()"


@rule("CC005", "guarded-by state written outside the owning lock",
      severity=Severity.ERROR, category="code", scope="code")
def check_guarded_by(ctx: LintContext) -> Iterator[Finding]:
    module = ctx.module
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        guarded = _guarded_attrs(cls, module.guarded_lines)
        if not guarded:
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction is single-threaded by contract
            for stmt in method.body:
                for node, held in _walk_held(stmt, ()):
                    for attr, kind in _written_attrs(node):
                        lock = guarded.get(attr)
                        if lock is None or lock in held:
                            continue
                        if node.lineno in module.guarded_lines:
                            continue  # a (re)declaration, not a write
                        yield Finding(
                            f"{cls.name}.{method.name}: self.{attr} "
                            f"{kind} outside its owning lock "
                            f"{lock!r} (declared guarded-by)",
                            line=node.lineno)


# ----------------------------------------------------------------------
# CC006 — span opened without a with/finally close path
# ----------------------------------------------------------------------

#: final call-name segments that open a tracing span
_SPAN_OPENERS = frozenset({"span", "start_span"})


def _span_opener(node: ast.AST) -> Optional[str]:
    """The dotted call name when ``node`` is a span-opening call
    (final segment ``span`` or ``start_span``), else None."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name is None:
        return None
    return name if name.rsplit(".", 1)[-1] in _SPAN_OPENERS else None


@rule("CC006", "span opened without a with/finally close path",
      severity=Severity.ERROR, category="code", scope="code")
def check_leaked_spans(ctx: LintContext) -> Iterator[Finding]:
    """Tracing spans (``obs.span`` / ``tracer.start_span``) must end on
    every path, or the span stays open forever and the trace tree loses
    its parent edges.  A span-opening call is safe when it is the
    context expression of a ``with`` (the protocol closes it), when it
    is returned directly (the caller owns it), or when it is assigned
    to a name the function demonstrably closes (the name is later used
    as a ``with`` context or has ``.end()``/``.close()`` called on it,
    e.g. in a ``finally``).  Anything else is a leaked span."""
    module = ctx.module
    for function in _functions(module.tree):
        body_nodes = list(iter_body_nodes(function.body))
        safe: set[int] = set()          # call nodes proven to be closed
        closed_names: set[str] = set()  # names the function closes
        for node in body_nodes:
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if _span_opener(expr) is not None:
                        safe.add(id(expr))
                    name = dotted_name(expr)
                    if name is not None:
                        closed_names.add(name)
            elif isinstance(node, ast.Return) and node.value is not None:
                for sub in ast.walk(node.value):
                    if _span_opener(sub) is not None:
                        safe.add(id(sub))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute) \
                        and func.attr in ("end", "close"):
                    name = dotted_name(func.value)
                    if name is not None:
                        closed_names.add(name)
        for node in body_nodes:
            if not isinstance(node, ast.Assign) \
                    or _span_opener(node.value) is None:
                continue
            if any(dotted_name(target) in closed_names
                   for target in node.targets):
                safe.add(id(node.value))
        for node in body_nodes:
            name = _span_opener(node)
            if name is None or id(node) in safe:
                continue
            yield Finding(
                f"{function.name}: {name}(...) opens a span that is "
                "never closed — wrap it in `with`, or assign it and "
                "call .end() in a finally", line=node.lineno)


# ----------------------------------------------------------------------
# CC007 — journaled desired state mutated outside an intent scope
# ----------------------------------------------------------------------

#: the desired-state mutator methods the write-ahead journal protects;
#: calls to these on another object must run under an open intent
_JOURNALED_MUTATORS = frozenset({
    "commit_mapping", "remove_service", "restore_service",
})


def _journaled_attrs(cls: ast.ClassDef,
                     journaled_lines: dict[int, tuple[str, ...]],
                     ) -> dict[str, tuple[str, ...]]:
    """attr name -> allowed mutator methods, from ``# journaled:``
    comments on ``self.<attr> = ...`` statements in the class."""
    journaled: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(cls):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        allowed = None
        for lineno in range(node.lineno,
                            (node.end_lineno or node.lineno) + 1):
            if lineno in journaled_lines:
                allowed = journaled_lines[lineno]
                break
        if allowed is None:
            continue
        for target in targets:
            attr = self_attr(target)
            if attr is not None:
                journaled[attr] = allowed
    return journaled


def _walk_intent(node: ast.AST, inside: bool,
                 ) -> Iterator[tuple[ast.AST, bool]]:
    """Yield ``(node, inside an intent scope)`` for every node lexically
    inside ``node``, skipping nested function/lambda/class bodies and
    entering scope through ``with <...>.intent(...)`` items."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.Lambda, ast.ClassDef)):
        return
    yield node, inside
    if isinstance(node, ast.With):
        opened = inside
        for item in node.items:
            yield from _walk_intent(item.context_expr, inside)
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                name = dotted_name(expr.func)
                if name is not None \
                        and name.rsplit(".", 1)[-1] == "intent":
                    opened = True
        for stmt in node.body:
            yield from _walk_intent(stmt, opened)
        return
    for child in ast.iter_child_nodes(node):
        yield from _walk_intent(child, inside)


def _has_intent_param(function: ast.FunctionDef) -> bool:
    args = function.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    return "intent" in names


@rule("CC007", "journaled desired state mutated outside an intent scope",
      severity=Severity.ERROR, category="code", scope="code")
def check_journaled_writes(ctx: LintContext) -> Iterator[Finding]:
    """The write-ahead intent journal only protects desired state that
    is mutated under an open intent: a write the journal never saw is
    a write recovery cannot replay or roll back.

    Two disciplines, driven by ``# journaled:`` annotations (see
    :mod:`repro.lint.codescope`):

    - inside the declaring class, only ``__init__`` and the methods the
      annotation names may write the attribute;
    - calls to the canonical mutator methods on *another* object
      (``self.cal.remove_service(...)``) must be lexically inside a
      ``with <journal>.intent(...):`` block, or in a function that
      takes the open scope as an ``intent`` parameter, or carry their
      own ``# journaled:`` line as an explicit exemption.
    """
    module = ctx.module
    for cls in ast.walk(module.tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        journaled = _journaled_attrs(cls, module.journaled_lines)
        if not journaled:
            continue
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction precedes any journaled intent
            allowed_here = {attr for attr, methods in journaled.items()
                            if method.name in methods}
            for node in iter_body_nodes(method.body):
                for attr, kind in _written_attrs(node):
                    if attr not in journaled or attr in allowed_here:
                        continue
                    if node.lineno in module.journaled_lines:
                        continue  # a (re)declaration, not a write
                    yield Finding(
                        f"{cls.name}.{method.name}: self.{attr} {kind} "
                        f"but only {list(journaled[attr])} may mutate "
                        "it (declared # journaled:)", line=node.lineno)
    for function in _functions(module.tree):
        if _has_intent_param(function):
            continue  # runs under the caller's open intent scope
        for stmt in function.body:
            for node, inside in _walk_intent(stmt, False):
                if inside or not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute) \
                        or func.attr not in _JOURNALED_MUTATORS:
                    continue
                receiver = dotted_name(func.value)
                if receiver is None or receiver == "self":
                    continue  # the declaring class's own primitives
                if node.lineno in module.journaled_lines:
                    continue  # explicitly exempted call site
                yield Finding(
                    f"{function.name}: {receiver}.{func.attr}(...) "
                    "mutates journaled desired state outside a "
                    "`with journal.intent(...)` scope — a crash here "
                    "leaves a write the journal cannot replay or roll "
                    "back", line=node.lineno)
