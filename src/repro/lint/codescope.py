"""Code-scope analysis input: parsed Python modules of this repo.

The ``code`` lint scope runs AST rules over ``src/repro`` itself — the
same engine/registry/diagnostic machinery that checks NFFGs, pointed at
the orchestrator's own source.  :class:`CodeModule` is what a code rule
receives in its :class:`~repro.lint.engine.LintContext` (``ctx.module``):
the file path, raw source, parsed ``ast`` tree, and the pre-scanned
``# guarded-by:`` annotations.

Shared helpers live here too, because several CC rules need the same
primitives: a dotted-name printer, the lock-attribute heuristic, and
the guarded-by comment scanner.

Guarded-by annotations
----------------------

A trailing comment on an instance-attribute assignment declares which
lock owns that attribute::

    self._pending_reconcile: set[str] = set()  # guarded-by: _pending_lock

Rule CC005 then requires every *write* to ``self._pending_reconcile``
outside ``__init__`` to happen lexically inside a
``with self._pending_lock:`` block.

Journaled annotations
---------------------

A trailing comment on an instance-attribute assignment declares that
the attribute is write-ahead-journaled desired state and names its
only legitimate mutator methods::

    self._deployed: dict[...] = (
        {}  # journaled: commit_mapping remove_service restore_service
    )

Rule CC007 then (a) flags writes to the attribute from any method not
in that list, and (b) flags calls to the listed mutators on *other*
objects (``self.cal.remove_service(...)``) outside a
``with <journal>.intent(...):`` scope.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

#: attribute/variable names treated as locks by the CC rules
_LOCK_NAME_HINTS = ("lock", "guard", "mutex")

_GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

_JOURNALED_RE = re.compile(
    r"#\s*journaled:\s*([A-Za-z_][A-Za-z0-9_]*(?:\s+[A-Za-z_][A-Za-z0-9_]*)*)")


@dataclass
class CodeModule:
    """One parsed Python source file, ready for code-scope rules."""

    path: str
    source: str
    tree: ast.Module
    #: source line number -> lock attribute named by a guarded-by comment
    guarded_lines: dict[int, str] = field(default_factory=dict)
    #: source line number -> mutator names from a ``# journaled:`` comment
    journaled_lines: dict[int, tuple[str, ...]] = field(default_factory=dict)

    @classmethod
    def from_source(cls, source: str, path: str = "<memory>") -> "CodeModule":
        return cls(path=path, source=source,
                   tree=ast.parse(source, filename=path),
                   guarded_lines=scan_guarded_by(source),
                   journaled_lines=scan_journaled(source))

    @classmethod
    def from_file(cls, path: str | Path) -> "CodeModule":
        path = Path(path)
        return cls.from_source(path.read_text(encoding="utf-8"), str(path))


def scan_guarded_by(source: str) -> dict[int, str]:
    """Map 1-based line numbers to the lock named by ``# guarded-by:``."""
    guarded: dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _GUARDED_BY_RE.search(line)
        if match:
            guarded[lineno] = match.group(1)
    return guarded


def scan_journaled(source: str) -> dict[int, tuple[str, ...]]:
    """Map 1-based line numbers to the mutator names listed by a
    ``# journaled:`` comment."""
    journaled: dict[int, tuple[str, ...]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _JOURNALED_RE.search(line)
        if match:
            journaled[lineno] = tuple(match.group(1).split())
    return journaled


def package_root() -> Path:
    """The ``src/repro`` package directory (self-lint target)."""
    import repro

    return Path(repro.__file__).parent


def iter_package_modules(root: Optional[str | Path] = None,
                         ) -> Iterator[CodeModule]:
    """Parse every ``*.py`` under ``root`` (default: the repro package),
    sorted for deterministic output.  Raises ``SyntaxError`` on an
    unparseable file — self-lint should never paper over those."""
    base = Path(root) if root is not None else package_root()
    if base.is_file():
        yield CodeModule.from_file(base)
        return
    for path in sorted(base.rglob("*.py")):
        yield CodeModule.from_file(path)


# ----------------------------------------------------------------------
# AST helpers shared by the CC rules
# ----------------------------------------------------------------------

def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_lock_expr(node: ast.AST) -> Optional[str]:
    """The lock's dotted name if ``node`` looks like a lock, else None.

    Heuristic: the final name segment contains "lock", "guard" or
    "mutex" — matches this repo's naming (``_pending_lock``, ``_guard``,
    ``_schedule_lock``) — either directly (``with self._lock:``) or as
    a call (``with self._lock_for(domain):``).
    """
    target = node
    if isinstance(target, ast.Call):
        target = target.func
    name = dotted_name(target)
    if name is None:
        return None
    final = name.rsplit(".", 1)[-1].lower()
    if any(hint in final for hint in _LOCK_NAME_HINTS):
        return name if not isinstance(node, ast.Call) \
            else f"{name}(...)"
    return None


def self_attr(node: ast.AST) -> Optional[str]:
    """``attr`` when ``node`` is exactly ``self.<attr>``, else None."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


def iter_body_calls(nodes: list[ast.stmt]) -> Iterator[ast.Call]:
    """Every Call in the given statements, skipping nested function and
    lambda bodies (those run later, outside the enclosing context)."""
    for node in iter_body_nodes(nodes):
        if isinstance(node, ast.Call):
            yield node


def iter_body_nodes(nodes: list[ast.stmt]) -> Iterator[ast.AST]:
    """Every AST node lexically inside the statements, excluding nested
    function/lambda/class bodies."""
    stack: list[ast.AST] = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            stack.append(child)
