"""The built-in rule catalog.

Rule id prefixes follow the layer the rule inspects:

- ``NF``  graph well-formedness (nodes, ports, edges),
- ``RS``  resource soundness (capacities, bandwidth, delay budgets),
- ``FR``  flow-rule analysis (port references, loops, ambiguity),
- ``MD``  multi-domain consistency (sap tags, cross-view merges),
- ``DC``  decomposition coverage (abstract NFs and their rules).

The mapping validator (:mod:`repro.mapping.validate`) emits ``MP``
diagnostics through the same :class:`~repro.lint.diagnostics.Diagnostic`
type but runs post-mapping, against a concrete embedding, so its checks
are not registered here.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.lint.diagnostics import Finding, Severity
from repro.lint.engine import LintContext
from repro.lint.registry import default_registry
from repro.nffg.model import (
    EdgeLink,
    EdgeSGHop,
    Flowrule,
    NodeInfra,
    Port,
    ResourceVector,
)
from repro.nffg.ops import consumed_resources

_registry = default_registry()
rule = _registry.rule

_EPS = 1e-9


# ----------------------------------------------------------------------
# NF — graph well-formedness
# ----------------------------------------------------------------------

@rule("NF001", "edge endpoint references a missing node or port",
      severity=Severity.ERROR, category="graph")
def check_dangling_endpoints(ctx: LintContext) -> Iterator[Finding]:
    nffg = ctx.nffg
    for edge in nffg.edges:
        for node_id, port_id, role in ((edge.src_node, edge.src_port, "src"),
                                       (edge.dst_node, edge.dst_port, "dst")):
            if not nffg.has_node(node_id):
                yield Finding(
                    f"edge {edge.id!r}: {role} node {node_id!r} missing",
                    edge=edge.id, node=node_id)
            elif not nffg.node(node_id).has_port(port_id):
                yield Finding(
                    f"edge {edge.id!r}: {role} port "
                    f"{node_id}.{port_id} missing",
                    edge=edge.id, node=node_id, port=port_id)


@rule("NF002", "NF not connected to any SG hop or hosting infra",
      severity=Severity.WARNING, category="graph")
def check_orphan_nfs(ctx: LintContext) -> Iterator[Finding]:
    nffg = ctx.nffg
    connected = set()
    for edge in nffg.edges:
        connected.add(edge.src_node)
        connected.add(edge.dst_node)
    for nf in nffg.nfs:
        if nf.id not in connected:
            yield Finding(
                f"NF {nf.id!r} is orphaned: no SG hop or dynamic link "
                "touches it", node=nf.id)


@rule("NF003", "SAP unreachable: no edge or sap-tagged port binds it",
      severity=Severity.WARNING, category="graph")
def check_unreachable_saps(ctx: LintContext) -> Iterator[Finding]:
    nffg = ctx.nffg
    connected = set()
    for edge in nffg.edges:
        connected.add(edge.src_node)
        connected.add(edge.dst_node)
    bound_tags = {port.sap_tag for infra in nffg.infras
                  for port in infra.ports.values() if port.sap_tag}
    for sap in nffg.saps:
        if sap.id not in connected and sap.id not in bound_tags:
            yield Finding(
                f"SAP {sap.id!r} is unreachable: no edge and no "
                "sap-tagged infra port binds it", node=sap.id)


@rule("NF004", "SG hop endpoint is an infra node",
      severity=Severity.ERROR, category="graph")
def check_sg_hop_on_infra(ctx: LintContext) -> Iterator[Finding]:
    nffg = ctx.nffg
    for hop in nffg.sg_hops:
        for endpoint in (hop.src_node, hop.dst_node):
            if (nffg.has_node(endpoint)
                    and isinstance(nffg.node(endpoint), NodeInfra)):
                yield Finding(
                    f"SG hop {hop.id!r} touches infra node {endpoint!r}; "
                    "hops connect NFs and SAPs only",
                    edge=hop.id, node=endpoint)


@rule("NF005", "requirement path references a missing or non-hop edge",
      severity=Severity.ERROR, category="graph")
def check_requirement_paths(ctx: LintContext) -> Iterator[Finding]:
    nffg = ctx.nffg
    for req in nffg.requirements:
        for hop_id in req.sg_path:
            if not nffg.has_edge(hop_id):
                yield Finding(
                    f"requirement {req.id!r}: unknown hop {hop_id!r}",
                    edge=req.id)
            elif not isinstance(nffg.edge(hop_id), EdgeSGHop):
                yield Finding(
                    f"requirement {req.id!r}: path element {hop_id!r} "
                    "is not an SG hop", edge=req.id)


# ----------------------------------------------------------------------
# RS — resource soundness
# ----------------------------------------------------------------------

def _negative_components(vector: ResourceVector) -> list[str]:
    return [name for name in ("cpu", "mem", "storage", "bandwidth", "delay")
            if getattr(vector, name) < -_EPS]


@rule("RS001", "negative resource demand, capacity, bandwidth or delay",
      severity=Severity.ERROR, category="resources")
def check_negative_resources(ctx: LintContext) -> Iterator[Finding]:
    nffg = ctx.nffg
    for nf in nffg.nfs:
        bad = _negative_components(nf.resources)
        if bad:
            yield Finding(
                f"NF {nf.id!r} demands negative {', '.join(bad)}",
                node=nf.id)
    for infra in nffg.infras:
        bad = _negative_components(infra.resources)
        if bad:
            yield Finding(
                f"infra {infra.id!r} advertises negative "
                f"{', '.join(bad)}", node=infra.id)
    for edge in nffg.edges:
        if isinstance(edge, EdgeLink):
            if edge.bandwidth < -_EPS:
                yield Finding(
                    f"link {edge.id!r} has negative bandwidth "
                    f"{edge.bandwidth}", edge=edge.id)
            if edge.delay < -_EPS:
                yield Finding(
                    f"link {edge.id!r} has negative delay {edge.delay}",
                    edge=edge.id)
        elif isinstance(edge, EdgeSGHop):
            if edge.bandwidth < -_EPS:
                yield Finding(
                    f"SG hop {edge.id!r} demands negative bandwidth "
                    f"{edge.bandwidth}", edge=edge.id)
            if edge.delay < -_EPS:
                yield Finding(
                    f"SG hop {edge.id!r} has negative delay budget "
                    f"{edge.delay}", edge=edge.id)


@rule("RS002", "infra capacity overcommitted by hosted NFs",
      severity=Severity.ERROR, category="resources")
def check_node_overcommit(ctx: LintContext) -> Iterator[Finding]:
    nffg = ctx.nffg
    for infra in nffg.infras:
        demand = consumed_resources(nffg, infra.id)
        if not demand.fits_within(infra.resources):
            yield Finding(
                f"infra {infra.id!r} overcommitted: hosted NFs demand "
                f"cpu={demand.cpu:g}/mem={demand.mem:g}/"
                f"storage={demand.storage:g} against capacity "
                f"cpu={infra.resources.cpu:g}/mem={infra.resources.mem:g}/"
                f"storage={infra.resources.storage:g}", node=infra.id)


@rule("RS003", "link bandwidth oversubscribed by reservations",
      severity=Severity.ERROR, category="resources")
def check_link_oversubscription(ctx: LintContext) -> Iterator[Finding]:
    for link in ctx.nffg.links:
        if link.reserved - link.bandwidth > _EPS:
            yield Finding(
                f"link {link.id!r} oversubscribed: {link.reserved:g} "
                f"Mbps reserved of {link.bandwidth:g} Mbps capacity",
                edge=link.id)


@rule("RS004", "end-to-end delay budget infeasible",
      severity=Severity.WARNING, category="resources")
def check_delay_budgets(ctx: LintContext) -> Iterator[Finding]:
    nffg = ctx.nffg
    for req in nffg.requirements:
        if req.max_delay < 0:
            yield Finding(
                f"requirement {req.id!r} has negative delay budget "
                f"{req.max_delay:g} ms", edge=req.id,
                severity=Severity.ERROR)
            continue
        if req.max_delay == float("inf"):
            continue
        floor = 0.0
        for hop_id in req.sg_path:
            if nffg.has_edge(hop_id):
                hop = nffg.edge(hop_id)
                if isinstance(hop, EdgeSGHop):
                    floor += hop.delay
        if floor - req.max_delay > _EPS:
            yield Finding(
                f"requirement {req.id!r}: per-hop delays sum to "
                f"{floor:g} ms, exceeding the {req.max_delay:g} ms "
                "budget — no mapping can satisfy it", edge=req.id)


@rule("RS005", "static link advertises zero bandwidth",
      severity=Severity.INFO, category="resources")
def check_zero_bandwidth_links(ctx: LintContext) -> Iterator[Finding]:
    for link in ctx.nffg.links:
        if abs(link.bandwidth) <= _EPS:
            yield Finding(
                f"link {link.id!r} advertises zero bandwidth; no SG hop "
                "with a bandwidth demand can route across it",
                edge=link.id)


# ----------------------------------------------------------------------
# FR — flow-rule analysis
# ----------------------------------------------------------------------

def _iter_infra_rules(infra: NodeInfra) -> Iterator[tuple[Port, int, Flowrule]]:
    for port in infra.ports.values():
        for index, flowrule in enumerate(port.flowrules):
            yield port, index, flowrule


@rule("FR001", "flow rule references a port the node does not have",
      severity=Severity.ERROR, category="flowrules")
def check_flowrule_ports(ctx: LintContext) -> Iterator[Finding]:
    for infra in ctx.nffg.infras:
        for port, index, flowrule in _iter_infra_rules(infra):
            in_port = flowrule.match_fields().get("in_port")
            if in_port is not None and not infra.has_port(in_port):
                yield Finding(
                    f"flow rule on {infra.id}.{port.id} matches "
                    f"in_port={in_port!r}, which does not exist on "
                    f"{infra.id!r}", node=infra.id, port=port.id,
                    flowrule=index)
            out_port = flowrule.action_fields().get("output")
            if out_port and not infra.has_port(out_port):
                yield Finding(
                    f"flow rule on {infra.id}.{port.id} outputs to "
                    f"port {out_port!r}, which does not exist on "
                    f"{infra.id!r}", node=infra.id, port=port.id,
                    flowrule=index)


@rule("FR002", "flow rules form a forwarding loop inside a BiS-BiS",
      severity=Severity.ERROR, category="flowrules")
def check_flowrule_loops(ctx: LintContext) -> Iterator[Finding]:
    """Detect port-level cycles among rules that preserve the packet's
    steering context (same flowclass, same VLAN-tag state).

    Rules that re-tag or untag hand the packet to a *different* match
    context, so they cannot close a loop within this conservative
    model; chains produced by the mapping layer (tag on ingress, untag
    on egress) therefore never trigger it.
    """
    for infra in ctx.nffg.infras:
        groups: dict[tuple, dict[str, set[str]]] = defaultdict(dict)
        for port, _, flowrule in _iter_infra_rules(infra):
            match = flowrule.match_fields()
            action = flowrule.action_fields()
            out_port = action.get("output")
            if not out_port:
                continue
            match_tag = match.get("tag")
            action_tag = action.get("tag")
            if "untag" in action:
                continue                      # tag state changes: exits group
            if action_tag is not None and action_tag != match_tag:
                continue                      # re-tag: exits group
            key = (flowrule.hop_id, match.get("flowclass", ""), match_tag)
            in_port = match.get("in_port", port.id)
            groups[key].setdefault(in_port, set()).add(out_port)
        for key, adjacency in groups.items():
            cycle = _find_cycle(adjacency)
            if cycle:
                yield Finding(
                    f"flow rules on infra {infra.id!r} form a forwarding "
                    f"loop through ports {' -> '.join(cycle)}"
                    + (f" (hop {key[0]!r})" if key[0] else ""),
                    node=infra.id, port=cycle[0])


def _find_cycle(adjacency: dict[str, set[str]]) -> list[str]:
    """First directed cycle in a port adjacency, as a port sequence."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {node: WHITE for node in adjacency}
    stack: list[str] = []

    def visit(node: str) -> list[str]:
        color[node] = GREY
        stack.append(node)
        for succ in sorted(adjacency.get(node, ())):
            state = color.get(succ, WHITE)
            if state == GREY:
                return stack[stack.index(succ):] + [succ]
            if state == WHITE:
                found = visit(succ)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return []

    for node in sorted(adjacency):
        if color[node] == WHITE:
            found = visit(node)
            if found:
                return found
    return []


@rule("FR003", "flow rules on one port with identical matches",
      severity=Severity.WARNING, category="flowrules")
def check_shadowed_flowrules(ctx: LintContext) -> Iterator[Finding]:
    """Two rules with the same match on the same port get the same
    priority from the FlowMod translation — which one wins is switch-
    dependent.  Identical actions are merely redundant (INFO)."""
    for infra in ctx.nffg.infras:
        for port in infra.ports.values():
            seen: dict[tuple, tuple[int, Flowrule]] = {}
            for index, flowrule in enumerate(port.flowrules):
                match_key = tuple(sorted(flowrule.match_fields().items()))
                previous = seen.get(match_key)
                if previous is None:
                    seen[match_key] = (index, flowrule)
                    continue
                prev_index, prev_rule = previous
                if (prev_rule.action_fields()
                        == flowrule.action_fields()):
                    yield Finding(
                        f"flow rule #{index} on {infra.id}.{port.id} "
                        f"duplicates rule #{prev_index} (same match, "
                        "same action)", node=infra.id, port=port.id,
                        flowrule=index, severity=Severity.INFO)
                else:
                    yield Finding(
                        f"flow rule #{index} on {infra.id}.{port.id} "
                        f"shadows rule #{prev_index}: identical match "
                        f"{flowrule.match!r} but conflicting actions "
                        f"({prev_rule.action!r} vs {flowrule.action!r})",
                        node=infra.id, port=port.id, flowrule=index)


# ----------------------------------------------------------------------
# MD — multi-domain consistency
# ----------------------------------------------------------------------

def _tag_endpoints(nffg) -> dict[str, list[tuple[str, str]]]:
    endpoints: dict[str, list[tuple[str, str]]] = defaultdict(list)
    for infra in nffg.infras:
        for port in infra.ports.values():
            if port.sap_tag is not None:
                endpoints[port.sap_tag].append((infra.id, port.id))
    return endpoints


@rule("MD001", "sap_tag bound to more than two infra ports",
      severity=Severity.ERROR, category="multidomain")
def check_sap_tag_multiplicity(ctx: LintContext) -> Iterator[Finding]:
    for tag, endpoints in sorted(_tag_endpoints(ctx.nffg).items()):
        if len(endpoints) > 2:
            where = ", ".join(f"{node}.{port}" for node, port in endpoints)
            yield Finding(
                f"sap_tag {tag!r} appears on {len(endpoints)} ports "
                f"({where}); merge_nffgs stitches exactly two",
                node=endpoints[0][0], port=endpoints[0][1])


@rule("MD002", "sap-tagged hand-off port unpaired in this view",
      severity=Severity.INFO, category="multidomain")
def check_unpaired_sap_tags(ctx: LintContext) -> Iterator[Finding]:
    """A lone sap-tagged port with no SAP node and no attached edge is
    an inter-domain hand-off waiting for its peer — expected in a
    single-domain view, suspicious in a merged one (hence INFO)."""
    nffg = ctx.nffg
    for tag, endpoints in sorted(_tag_endpoints(nffg).items()):
        if len(endpoints) != 1 or nffg.has_node(tag):
            continue
        node_id, port_id = endpoints[0]
        attached = any(
            (edge.src_node == node_id and edge.src_port == port_id)
            or (edge.dst_node == node_id and edge.dst_port == port_id)
            for edge in nffg.edges)
        if not attached:
            yield Finding(
                f"sap_tag {tag!r} on {node_id}.{port_id} has no peer "
                "port, no SAP node and no attached link in this view",
                node=node_id, port=port_id)


@rule("MD003", "node id collides across domain views",
      severity=Severity.ERROR, category="multidomain", scope="views")
def check_cross_view_duplicates(ctx: LintContext) -> Iterator[Finding]:
    owners: dict[str, str] = {}
    for view in ctx.views:
        for node in view.nodes:
            owner = owners.get(node.id)
            if owner is not None and owner != view.id:
                yield Finding(
                    f"node id {node.id!r} appears in views {owner!r} "
                    f"and {view.id!r}; merge_nffgs requires globally "
                    "unique node ids", node=node.id, graph=view.id)
            else:
                owners[node.id] = view.id


@rule("MD004", "sap_tag pairing inconsistent across domain views",
      severity=Severity.ERROR, category="multidomain", scope="views")
def check_cross_view_sap_tags(ctx: LintContext) -> Iterator[Finding]:
    endpoints: dict[str, list[tuple[str, str, str]]] = defaultdict(list)
    for view in ctx.views:
        for tag, pairs in _tag_endpoints(view).items():
            for node_id, port_id in pairs:
                endpoints[tag].append((view.id, node_id, port_id))
    for tag, places in sorted(endpoints.items()):
        if len(places) > 2:
            where = ", ".join(f"{view}:{node}.{port}"
                              for view, node, port in places)
            yield Finding(
                f"sap_tag {tag!r} appears on {len(places)} ports across "
                f"the views ({where}); merge_nffgs would reject the "
                "stitch", node=places[0][1], port=places[0][2],
                graph=places[0][0])


@rule("MD005", "slice flow rule references a port absent from its domain view",
      severity=Severity.ERROR, category="multidomain", scope="views")
def check_slice_flowrule_ports(ctx: LintContext) -> Iterator[Finding]:
    """A per-domain install slice must be self-contained: every port a
    flow rule matches on or outputs to must exist on that infra *in
    that slice*.  A missing port means the rule was written against a
    different view of the node (global view, another domain's slice) —
    the domain orchestrator would reject or misprogram it, and a delta
    push must never be able to ship a patch the full-config path would
    have rejected.  When another view does carry the port, the finding
    names it, pointing at the slicing step rather than a typo.
    """
    locations: dict[tuple[str, str], list[str]] = defaultdict(list)
    for view in ctx.views:
        for infra in view.infras:
            for port_id in infra.ports:
                locations[(infra.id, port_id)].append(view.id)
    for view in ctx.views:
        for infra in view.infras:
            for port, index, flowrule in _iter_infra_rules(infra):
                refs = (("matches in_port",
                         flowrule.match_fields().get("in_port")),
                        ("outputs to port",
                         flowrule.action_fields().get("output")))
                for role, ref in refs:
                    if not ref or infra.has_port(ref):
                        continue
                    elsewhere = [owner for owner
                                 in locations.get((infra.id, ref), [])
                                 if owner != view.id]
                    hint = (f" (port exists in view {elsewhere[0]!r})"
                            if elsewhere else "")
                    yield Finding(
                        f"view {view.id!r}: flow rule on "
                        f"{infra.id}.{port.id} {role} {ref!r}, which is "
                        f"absent from this domain view{hint}",
                        node=infra.id, port=port.id, flowrule=index,
                        graph=view.id)


# ----------------------------------------------------------------------
# DC — decomposition coverage
# ----------------------------------------------------------------------

@rule("DC001", "abstract NF type has no decomposition rule",
      severity=Severity.ERROR, category="decomposition")
def check_abstract_nfs_decomposable(ctx: LintContext) -> Iterator[Finding]:
    library = ctx.decomposition_library
    if library is None:
        return
    for nf in ctx.nffg.nfs:
        if (library.is_abstract(nf.functional_type)
                and not library.options_for(nf.functional_type)):
            yield Finding(
                f"NF {nf.id!r} has abstract type "
                f"{nf.functional_type!r} but the decomposition library "
                "offers no rule for it — it can never deploy",
                node=nf.id)


@rule("DC002", "decomposition cannot cover all parent NF ports",
      severity=Severity.WARNING, category="decomposition")
def check_decomposition_port_coverage(ctx: LintContext) -> Iterator[Finding]:
    """Chain expansion exposes exactly port ``1`` of the first component
    and port ``2`` of the last; an abstract NF wired through any other
    port would lose those attachments when it is expanded."""
    library = ctx.decomposition_library
    if library is None:
        return
    covered = {"1", "2"}
    for nf in ctx.nffg.nfs:
        if not library.is_abstract(nf.functional_type):
            continue
        options = library.options_for(nf.functional_type)
        if not any(getattr(option, "components", ()) for option in options):
            continue                          # DC001 already covers this
        # only ports used by edges matter — unused extras are inert
        used_ports = {
            edge.src_port for edge in ctx.nffg.edges
            if edge.src_node == nf.id
        } | {
            edge.dst_port for edge in ctx.nffg.edges
            if edge.dst_node == nf.id
        }
        uncovered = sorted(used_ports - covered)
        if uncovered:
            yield Finding(
                f"abstract NF {nf.id!r} is wired through port(s) "
                f"{', '.join(uncovered)}; decomposition exposes only "
                "ports 1 (ingress) and 2 (egress), so these attachments "
                "cannot survive expansion", node=nf.id,
                port=uncovered[0])
