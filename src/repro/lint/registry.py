"""The lint rule registry.

Rules register themselves with a stable id, a category, a default
severity and a check function.  Check functions receive a
:class:`~repro.lint.engine.LintContext` and yield
:class:`~repro.lint.diagnostics.Finding` objects; the engine stamps
rule id / category / severity onto each finding.

Three scopes exist:

- ``graph`` rules analyze one NFFG (the vast majority);
- ``views`` rules analyze a *set* of domain views together, catching
  problems that only materialize when :func:`repro.nffg.ops.merge_nffgs`
  stitches them (duplicate node ids, mismatched hand-off tags);
- ``code`` rules analyze a parsed Python module of this code base
  itself (:class:`~repro.lint.codescope.CodeModule`) — the CC
  concurrency rules.

Rule ids are namespaced: two uppercase letters plus three digits, and
the prefixes this project has assigned a meaning (NF/RS/FR/MD/DC/CC,
plus MP which the mapping validator emits outside the registry) are
**reserved** — registering a rule under a reserved prefix with the
wrong category, or under MP at all, is rejected so the catalog stays
collision-free as extensions register their own rules.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Optional

from repro.lint.diagnostics import Finding, Severity

CheckFn = Callable[..., Iterable[Finding]]

#: prefix -> category it is reserved for; ``None`` means the prefix is
#: claimed by a subsystem that emits diagnostics directly (the mapping
#: validator) and can never be registered here
RESERVED_PREFIXES: dict[str, Optional[str]] = {
    "NF": "graph",            # graph well-formedness
    "RS": "resources",        # resource soundness
    "FR": "flowrules",        # flow-rule analysis
    "MD": "multidomain",      # multi-domain consistency
    "DC": "decomposition",    # decomposition coverage
    "CC": "code",             # code-scope concurrency rules
    "MP": None,               # repro.mapping.validate (post-mapping)
}

VALID_SCOPES = ("graph", "views", "code")

_ID_PATTERN = re.compile(r"^([A-Z]{2})(\d{3})$")


@dataclass(frozen=True)
class LintRule:
    """One registered static-analysis rule."""

    id: str
    title: str
    severity: Severity
    category: str
    check: CheckFn
    scope: str = "graph"          #: "graph" or "views"

    def describe(self) -> str:
        return (f"{self.id}  {self.severity.label:7s} {self.category:12s} "
                f"{self.title}")


class RuleRegistry:
    """Ordered collection of rules, addressable by id and category."""

    def __init__(self) -> None:
        self._rules: dict[str, LintRule] = {}

    def register(self, rule: LintRule) -> LintRule:
        match = _ID_PATTERN.match(rule.id)
        if match is None:
            raise ValueError(
                f"lint rule id {rule.id!r} must be two uppercase letters "
                "plus three digits (e.g. 'NF001')")
        prefix = match.group(1)
        if prefix in RESERVED_PREFIXES:
            owner = RESERVED_PREFIXES[prefix]
            if owner is None:
                raise ValueError(
                    f"rule id prefix {prefix!r} is reserved for the "
                    "mapping validator (repro.mapping.validate), which "
                    "emits its diagnostics outside the registry")
            if rule.category != owner:
                raise ValueError(
                    f"rule id prefix {prefix!r} is reserved for category "
                    f"{owner!r}; rule {rule.id!r} declares "
                    f"{rule.category!r}")
        if rule.scope not in VALID_SCOPES:
            raise ValueError(
                f"rule {rule.id!r}: unknown scope {rule.scope!r}; "
                f"expected one of {VALID_SCOPES}")
        if rule.id in self._rules:
            raise ValueError(f"duplicate lint rule id {rule.id!r}")
        self._rules[rule.id] = rule
        return rule

    def rule(self, id: str, title: str, *, severity: Severity,
             category: str, scope: str = "graph") -> Callable[[CheckFn], CheckFn]:
        """Decorator: register ``check`` under the given metadata."""

        def decorator(check: CheckFn) -> CheckFn:
            self.register(LintRule(id=id, title=title, severity=severity,
                                   category=category, check=check,
                                   scope=scope))
            return check

        return decorator

    def get(self, rule_id: str) -> LintRule:
        try:
            return self._rules[rule_id]
        except KeyError:
            raise KeyError(f"unknown lint rule {rule_id!r}") from None

    def __contains__(self, rule_id: str) -> bool:
        return rule_id in self._rules

    def __iter__(self) -> Iterator[LintRule]:
        return iter(self._rules.values())

    def __len__(self) -> int:
        return len(self._rules)

    def select(self, *, ids: Optional[Iterable[str]] = None,
               categories: Optional[Iterable[str]] = None,
               scope: Optional[str] = None) -> list[LintRule]:
        """Rules filtered by id, category and/or scope."""
        wanted_ids = set(ids) if ids is not None else None
        wanted_categories = set(categories) if categories is not None else None
        selected = []
        for rule in self:
            if wanted_ids is not None and rule.id not in wanted_ids:
                continue
            if (wanted_categories is not None
                    and rule.category not in wanted_categories):
                continue
            if scope is not None and rule.scope != scope:
                continue
            selected.append(rule)
        return selected

    def categories(self) -> list[str]:
        seen: dict[str, None] = {}
        for rule in self:
            seen.setdefault(rule.category, None)
        return list(seen)


_DEFAULT = RuleRegistry()


def default_registry() -> RuleRegistry:
    """The process-wide registry the built-in rules register into."""
    return _DEFAULT
