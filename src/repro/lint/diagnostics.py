"""Structured lint results.

A :class:`Diagnostic` is one finding of one rule: severity, stable rule
id, category and an exact location inside the analyzed graph (node,
port, edge, flow-rule index).  :class:`DiagnosticList` is the container
every analysis entry point returns; it behaves like a plain list but
adds severity filtering and the ``as_strings()`` shim that keeps older
string-based assertions working.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable, Optional


class Severity(enum.IntEnum):
    """Finding severity; comparable (INFO < WARNING < ERROR)."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        try:
            return cls[name.upper()]
        except KeyError:
            raise ValueError(
                f"unknown severity {name!r}; expected one of "
                f"{[s.label for s in cls]}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding: what rule fired, how bad, and where."""

    rule_id: str
    severity: Severity
    category: str
    message: str
    #: location inside the analyzed graph (all optional)
    node: Optional[str] = None
    port: Optional[str] = None
    edge: Optional[str] = None
    flowrule: Optional[int] = None
    #: id of the NFFG/view — or, for code-scope rules, the file path —
    #: the finding belongs to
    graph: Optional[str] = None
    #: source line (code-scope rules only)
    line: Optional[int] = None

    def location(self) -> str:
        """Human-readable location string, empty when unlocated."""
        parts = []
        if self.node is not None:
            parts.append(f"node {self.node}")
        if self.port is not None:
            parts.append(f"port {self.port}")
        if self.flowrule is not None:
            parts.append(f"flowrule #{self.flowrule}")
        if self.edge is not None:
            parts.append(f"edge {self.edge}")
        if self.line is not None:
            parts.append(f"line {self.line}")
        return ", ".join(parts)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "rule": self.rule_id,
            "severity": self.severity.label,
            "category": self.category,
            "message": self.message,
        }
        for key in ("node", "port", "edge", "flowrule", "graph", "line"):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    def __str__(self) -> str:
        location = self.location()
        suffix = f" ({location})" if location else ""
        return (f"{self.severity.label.upper():7s} {self.rule_id} "
                f"[{self.category}] {self.message}{suffix}")


class DiagnosticList(list):
    """A list of :class:`Diagnostic` with severity helpers."""

    def as_strings(self) -> list[str]:
        """Bare messages — compatibility shim for string-based callers."""
        return [diag.message for diag in self]

    def at_least(self, severity: Severity) -> "DiagnosticList":
        return DiagnosticList(d for d in self if d.severity >= severity)

    @property
    def errors(self) -> "DiagnosticList":
        return self.at_least(Severity.ERROR)

    @property
    def warnings(self) -> "DiagnosticList":
        return DiagnosticList(d for d in self
                              if d.severity == Severity.WARNING)

    def worst(self) -> Optional[Severity]:
        return max((d.severity for d in self), default=None)

    def rule_ids(self) -> set[str]:
        return {d.rule_id for d in self}

    def by_rule(self) -> dict[str, "DiagnosticList"]:
        grouped: dict[str, DiagnosticList] = {}
        for diag in self:
            grouped.setdefault(diag.rule_id, DiagnosticList()).append(diag)
        return grouped

    def counts(self) -> dict[str, int]:
        tally = {severity.label: 0 for severity in Severity}
        for diag in self:
            tally[diag.severity.label] += 1
        return tally


@dataclass
class Finding:
    """What a rule's check function yields.

    Rule id / category / default severity are filled in by the engine
    from the rule's registration, so check bodies stay terse.  A rule
    may override its default severity per finding (e.g. negative
    bandwidth is an error, zero bandwidth only a warning).
    """

    message: str
    node: Optional[str] = None
    port: Optional[str] = None
    edge: Optional[str] = None
    flowrule: Optional[int] = None
    severity: Optional[Severity] = None
    graph: Optional[str] = None
    line: Optional[int] = None


def make_diagnostics(rule_id: str, category: str, default: Severity,
                     findings: Iterable[Finding],
                     graph_id: Optional[str]) -> list[Diagnostic]:
    """Materialize a rule's findings into diagnostics."""
    return [Diagnostic(rule_id=rule_id,
                       severity=finding.severity or default,
                       category=category, message=finding.message,
                       node=finding.node, port=finding.port,
                       edge=finding.edge, flowrule=finding.flowrule,
                       graph=finding.graph or graph_id,
                       line=finding.line)
            for finding in findings]
