"""Rendering lint results for humans (text) and machines (JSON/SARIF)."""

from __future__ import annotations

import json
from typing import Optional

from repro.lint.diagnostics import DiagnosticList
from repro.lint.registry import RuleRegistry, default_registry

#: Diagnostic severity label -> SARIF result level
_SARIF_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def render_text(diagnostics: DiagnosticList, *,
                source: Optional[str] = None) -> str:
    """Multi-line report: one line per finding plus a summary."""
    lines = []
    header = f"lint: {source}" if source else "lint report"
    lines.append(header)
    for diag in diagnostics:
        lines.append(f"  {diag}")
    counts = diagnostics.counts()
    lines.append(
        f"  {counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info(s)")
    return "\n".join(lines)


def render_json(diagnostics: DiagnosticList, *,
                source: Optional[str] = None) -> str:
    """Machine-readable report (stable shape for CI tooling)."""
    payload = {
        "source": source,
        "summary": diagnostics.counts(),
        "diagnostics": [diag.to_dict() for diag in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(diagnostics: DiagnosticList, *,
                 source: Optional[str] = None,
                 registry: Optional[RuleRegistry] = None) -> str:
    """SARIF 2.1.0 report — the shape CI annotators (GitHub code
    scanning) ingest.  ``graph`` doubles as the artifact URI: the file
    path for code-scope findings, the NFFG/view id (or ``source``)
    otherwise."""
    registry = registry or default_registry()
    rules_meta: dict[str, dict] = {}
    results = []
    for diag in diagnostics:
        if diag.rule_id not in rules_meta:
            meta = {"id": diag.rule_id,
                    "properties": {"category": diag.category}}
            if diag.rule_id in registry:
                meta["shortDescription"] = {
                    "text": registry.get(diag.rule_id).title}
            rules_meta[diag.rule_id] = meta
        result = {
            "ruleId": diag.rule_id,
            "level": _SARIF_LEVELS[diag.severity.label],
            "message": {"text": diag.message},
        }
        uri = diag.graph or source
        if uri is not None:
            location = {"artifactLocation": {"uri": uri}}
            if diag.line is not None:
                location["region"] = {"startLine": diag.line}
            result["locations"] = [{"physicalLocation": location}]
        results.append(result)
    payload = {
        "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                    "sarif-spec/master/Schemata/sarif-schema-2.1.0.json"),
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "rules": [rules_meta[rule_id]
                          for rule_id in sorted(rules_meta)],
            }},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog(registry: Optional[RuleRegistry] = None) -> str:
    """The rule catalog, grouped by category."""
    registry = registry or default_registry()
    lines = []
    for category in registry.categories():
        lines.append(f"{category}:")
        for rule in registry.select(categories=[category]):
            lines.append(f"  {rule.describe()}")
    return "\n".join(lines)
