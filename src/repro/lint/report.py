"""Rendering lint results for humans (text) and machines (JSON)."""

from __future__ import annotations

import json
from typing import Optional

from repro.lint.diagnostics import DiagnosticList
from repro.lint.registry import RuleRegistry, default_registry


def render_text(diagnostics: DiagnosticList, *,
                source: Optional[str] = None) -> str:
    """Multi-line report: one line per finding plus a summary."""
    lines = []
    header = f"lint: {source}" if source else "lint report"
    lines.append(header)
    for diag in diagnostics:
        lines.append(f"  {diag}")
    counts = diagnostics.counts()
    lines.append(
        f"  {counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['info']} info(s)")
    return "\n".join(lines)


def render_json(diagnostics: DiagnosticList, *,
                source: Optional[str] = None) -> str:
    """Machine-readable report (stable shape for CI tooling)."""
    payload = {
        "source": source,
        "summary": diagnostics.counts(),
        "diagnostics": [diag.to_dict() for diag in diagnostics],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog(registry: Optional[RuleRegistry] = None) -> str:
    """The rule catalog, grouped by category."""
    registry = registry or default_registry()
    lines = []
    for category in registry.categories():
        lines.append(f"{category}:")
        for rule in registry.select(categories=[category]):
            lines.append(f"  {rule.describe()}")
    return "\n".join(lines)
