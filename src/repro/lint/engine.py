"""The lint engine: runs rule sets over NFFGs and view collections.

The engine is deliberately dumb — all domain knowledge lives in the
rules.  It builds a :class:`LintContext`, invokes every selected rule,
stamps rule metadata onto the yielded findings and returns one flat
:class:`~repro.lint.diagnostics.DiagnosticList` sorted most-severe
first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.lint.codescope import CodeModule, iter_package_modules
from repro.lint.diagnostics import DiagnosticList, make_diagnostics
from repro.lint.registry import LintRule, RuleRegistry, default_registry
from repro.nffg.graph import NFFG


@dataclass
class LintContext:
    """Everything a rule may inspect.

    ``nffg`` is set for graph-scope rules, ``views`` for views-scope
    rules, ``module`` for code-scope rules.  ``decomposition_library``
    (duck-typed: ``is_abstract`` / ``options_for``) enables the
    decomposition-coverage rules; they stay silent without one.
    """

    nffg: Optional[NFFG] = None
    views: Sequence[NFFG] = field(default_factory=tuple)
    decomposition_library: Optional[object] = None
    module: Optional[CodeModule] = None


class LintEngine:
    """Run a rule selection over graphs and view sets."""

    def __init__(self, rules: Optional[Iterable[LintRule]] = None,
                 registry: Optional[RuleRegistry] = None):
        self.registry = registry or default_registry()
        self.rules = list(rules) if rules is not None else list(self.registry)

    def _run_rules(self, scope: str, ctx: LintContext,
                   graph_id: Optional[str]) -> DiagnosticList:
        diagnostics = DiagnosticList()
        for rule in self.rules:
            if rule.scope != scope:
                continue
            diagnostics.extend(make_diagnostics(
                rule.id, rule.category, rule.severity,
                rule.check(ctx), graph_id))
        return diagnostics

    def run(self, nffg: NFFG, *,
            decomposition_library: Optional[object] = None) -> DiagnosticList:
        """Analyze one NFFG (service graph, resource view or mapped graph)."""
        ctx = LintContext(nffg=nffg,
                          decomposition_library=decomposition_library)
        diagnostics = self._run_rules("graph", ctx, nffg.id)
        return _sorted(diagnostics)

    def run_views(self, views: Sequence[NFFG], *,
                  decomposition_library: Optional[object] = None) -> DiagnosticList:
        """Analyze a set of domain views: each individually, plus the
        cross-view rules that predict whether a merge would be sound."""
        views = list(views)
        diagnostics = DiagnosticList()
        for view in views:
            diagnostics.extend(self.run(
                view, decomposition_library=decomposition_library))
        ctx = LintContext(views=views,
                          decomposition_library=decomposition_library)
        diagnostics.extend(self._run_rules("views", ctx, None))
        return _sorted(diagnostics)

    def run_code(self, module: CodeModule) -> DiagnosticList:
        """Analyze one parsed Python module with the code-scope rules."""
        ctx = LintContext(module=module)
        return _sorted(self._run_rules("code", ctx, module.path))


def _sorted(diagnostics: DiagnosticList) -> DiagnosticList:
    return DiagnosticList(sorted(
        diagnostics, key=lambda d: (-d.severity, d.rule_id, d.message)))


def lint_nffg(nffg: NFFG, *, rules: Optional[Iterable[LintRule]] = None,
              decomposition_library: Optional[object] = None) -> DiagnosticList:
    """Convenience wrapper: run the default rule set over one NFFG."""
    return LintEngine(rules=rules).run(
        nffg, decomposition_library=decomposition_library)


def lint_views(views: Sequence[NFFG], *,
               rules: Optional[Iterable[LintRule]] = None,
               decomposition_library: Optional[object] = None) -> DiagnosticList:
    """Convenience wrapper: run the default rule set over domain views."""
    return LintEngine(rules=rules).run_views(
        views, decomposition_library=decomposition_library)


def lint_code(module: CodeModule, *,
              rules: Optional[Iterable[LintRule]] = None) -> DiagnosticList:
    """Convenience wrapper: run the code-scope rules over one module."""
    return LintEngine(rules=rules).run_code(module)


def lint_source(source: str, path: str = "<memory>", *,
                rules: Optional[Iterable[LintRule]] = None) -> DiagnosticList:
    """Run the code-scope rules over a source string (tests, tooling)."""
    return lint_code(CodeModule.from_source(source, path), rules=rules)


def self_lint(root: Optional[str] = None, *,
              rules: Optional[Iterable[LintRule]] = None) -> DiagnosticList:
    """Run the code-scope rules over every module of the repro package
    (or any directory/file): the ``repro check --self`` gate."""
    engine = LintEngine(rules=rules)
    diagnostics = DiagnosticList()
    for module in iter_package_modules(root):
        diagnostics.extend(engine.run_code(module))
    return DiagnosticList(sorted(
        diagnostics,
        key=lambda d: (d.graph or "", d.line or 0, d.rule_id)))
