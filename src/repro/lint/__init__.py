"""Static analysis for NFFGs, virtualizer views, flow-rule tables —
and, through the ``code`` scope, this repo's own source.

A rule-based analyzer in the tradition of compiler linters: every check
is a registered :class:`~repro.lint.registry.LintRule` with a stable ID
(``NF001``, ``RS002``, ``CC001``, ...), a default severity and a
category; running a rule set over an NFFG (or a
:class:`~repro.lint.codescope.CodeModule`) yields structured
:class:`~repro.lint.diagnostics.Diagnostic` results that pinpoint the
offending node/port/edge/flow rule — or file/line for code-scope
findings.  The ESCAPE orchestrator runs the engine as a pre-deploy
verification gate; ``repro lint`` exposes the graph rules and
``repro check`` the code rules on the command line.
"""

from repro.lint.codescope import CodeModule, iter_package_modules
from repro.lint.diagnostics import Diagnostic, DiagnosticList, Severity
from repro.lint.engine import (
    LintContext,
    LintEngine,
    lint_code,
    lint_nffg,
    lint_source,
    lint_views,
    self_lint,
)
from repro.lint.registry import (
    RESERVED_PREFIXES,
    LintRule,
    RuleRegistry,
    default_registry,
)
from repro.lint.report import (
    render_json,
    render_rule_catalog,
    render_sarif,
    render_text,
)

# importing the rules modules populates the default registry
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)
from repro.lint import code_rules as _code_rules  # noqa: F401

__all__ = [
    "CodeModule",
    "Diagnostic",
    "DiagnosticList",
    "LintContext",
    "LintEngine",
    "LintRule",
    "RESERVED_PREFIXES",
    "RuleRegistry",
    "Severity",
    "default_registry",
    "iter_package_modules",
    "lint_code",
    "lint_nffg",
    "lint_source",
    "lint_views",
    "render_json",
    "render_rule_catalog",
    "render_sarif",
    "render_text",
    "self_lint",
]
