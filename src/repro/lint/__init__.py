"""Static analysis for NFFGs, virtualizer views and flow-rule tables.

A rule-based analyzer in the tradition of compiler linters: every check
is a registered :class:`~repro.lint.registry.LintRule` with a stable ID
(``NF001``, ``RS002``, ...), a default severity and a category; running
a rule set over an NFFG yields structured
:class:`~repro.lint.diagnostics.Diagnostic` results that pinpoint the
offending node/port/edge/flow rule.  The ESCAPE orchestrator runs the
engine as a pre-deploy verification gate, and ``repro lint`` exposes it
on the command line.
"""

from repro.lint.diagnostics import Diagnostic, DiagnosticList, Severity
from repro.lint.engine import LintContext, LintEngine, lint_nffg, lint_views
from repro.lint.registry import LintRule, RuleRegistry, default_registry
from repro.lint.report import render_json, render_rule_catalog, render_text

# importing the rules module populates the default registry
from repro.lint import rules as _rules  # noqa: F401  (registration side effect)

__all__ = [
    "Diagnostic",
    "DiagnosticList",
    "LintContext",
    "LintEngine",
    "LintRule",
    "RuleRegistry",
    "Severity",
    "default_registry",
    "lint_nffg",
    "lint_views",
    "render_json",
    "render_rule_catalog",
    "render_text",
]
