"""``repro.obs`` — gated tracing, event log, and metrics exposition.

The observability layer mirrors :mod:`repro.sanitize`'s on/off trick:
a module-global :class:`ObsState` (one tracer + one event log) that is
``None`` unless ``REPRO_OBS`` is set in the environment at import time
or :func:`enable` is called.  Every instrumentation site goes through
:func:`span` / :func:`event`, whose disabled path is a single global
``None`` check returning a shared no-op span — the CP-1/CP-2/EXT-2
bench gates see no regression when tracing is off.

Typical scoped use (the CLI subcommands and tests do exactly this)::

    previous = obs.disable()
    state = obs.enable(fresh=True)
    try:
        ...traced work...
    finally:
        obs.disable()
        obs.restore(previous)
    print(render_tree(state.tracer))

Histograms and gauges are *not* gated — they live in
:mod:`repro.perf` and stay on everywhere, like the counters.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

from repro.obs.events import DEFAULT_MAX_EVENTS, EventLog, render_jsonl
from repro.obs.trace import (
    DEFAULT_MAX_SPANS,
    NOOP_SPAN,
    Span,
    Tracer,
    current_ids,
    current_span,
    render_tree,
    validate_chrome_trace,
)

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "DEFAULT_MAX_SPANS",
    "EventLog",
    "NOOP_SPAN",
    "ObsState",
    "Span",
    "Tracer",
    "bind_virtual_clock",
    "current_ids",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "event",
    "render_jsonl",
    "render_tree",
    "restore",
    "restore_virtual_clock",
    "span",
    "state",
    "validate_chrome_trace",
]


class ObsState:
    """One tracer plus one event log, enabled and torn down together."""

    def __init__(self, *, max_spans: int = DEFAULT_MAX_SPANS,
                 max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.tracer = Tracer(max_spans=max_spans)
        self.events = EventLog(max_events=max_events)


_STATE: Optional[ObsState] = None

#: optional virtual-time source stamped onto events while the sim
#: kernel is running (bound by Simulator.run when tracing is on)
_VCLOCK: Optional[Callable[[], float]] = None


def _env_enabled() -> bool:
    return os.environ.get("REPRO_OBS", "") not in ("", "0")


if _env_enabled():
    _STATE = ObsState()


def enabled() -> bool:
    """Whether tracing/event collection is currently on."""
    return _STATE is not None


def state() -> Optional[ObsState]:
    """The active state, or None when disabled."""
    return _STATE


def enable(fresh: bool = True) -> ObsState:
    """Turn tracing on; with ``fresh`` (default) start empty."""
    global _STATE
    if fresh or _STATE is None:
        _STATE = ObsState()
    return _STATE


def disable() -> Optional[ObsState]:
    """Turn tracing off; returns the detached state for inspection."""
    global _STATE
    detached, _STATE = _STATE, None
    return detached


def restore(previous: Optional[ObsState]) -> None:
    """Reinstate a state captured by :func:`disable`."""
    global _STATE
    _STATE = previous


def span(name: str, **attrs):
    """A context-managed span, or the shared no-op when tracing is off.

    The span parents under whatever span is active on the calling
    context, so nested ``with obs.span(...)`` blocks build the tree.
    """
    current = _STATE
    if current is None:
        return NOOP_SPAN
    return current.tracer.start_span(name, attrs)


def event(type_: str, **fields) -> None:
    """Append a structured event; no-op when tracing is off.

    The active span's trace/span ids and the bound virtual clock (if
    the sim kernel is running) are stamped on automatically.
    """
    current = _STATE
    if current is None:
        return
    trace_id, span_id = current_ids()
    vclock = _VCLOCK
    current.events.emit(type_, trace_id=trace_id, span_id=span_id,
                        vtime_ms=vclock() if vclock is not None else None,
                        fields=fields)


def bind_virtual_clock(
        clock: Optional[Callable[[], float]],
) -> Optional[Callable[[], float]]:
    """Stamp events with ``vtime_ms`` from ``clock``; returns the
    previously bound clock for a paired :func:`restore_virtual_clock`."""
    global _VCLOCK
    previous, _VCLOCK = _VCLOCK, clock
    return previous


def restore_virtual_clock(
        previous: Optional[Callable[[], float]]) -> None:
    global _VCLOCK
    _VCLOCK = previous
