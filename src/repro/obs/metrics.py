"""Prometheus text-exposition rendering for :mod:`repro.perf`.

Renders the global counters as ``repro_<name>_total`` counter families,
each histogram as a classic cumulative-``_bucket``/``_sum``/``_count``
family plus explicit ``_p50``/``_p95``/``_p99`` quantile gauges (the
fixed buckets make server-side quantiles coarse; the client-side ones
are exact up to bucket interpolation), and each gauge as a gauge
family.  Dotted metric names are mangled to underscores under the
``repro_`` prefix, per the exposition-format naming rules.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro import perf

_MANGLE = re.compile(r"[^a-zA-Z0-9_]")

#: the explicit client-side quantiles rendered per histogram
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p95", 0.95), ("p99", 0.99))


def metric_name(name: str, suffix: str = "") -> str:
    """``push.latency_s`` -> ``repro_push_latency_s<suffix>``."""
    return "repro_" + _MANGLE.sub("_", name) + suffix


def _label_str(labels: Tuple[Tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def _by_name(metrics_list) -> Dict[str, list]:
    grouped: Dict[str, list] = {}
    for metric in metrics_list:
        grouped.setdefault(metric.name, []).append(metric)
    return grouped


def render_prometheus(*, registry: Optional[perf.MetricsRegistry] = None,
                      counter_snapshot: Optional[dict] = None) -> str:
    """The counters + histograms + gauges in Prometheus text format."""
    registry = registry if registry is not None else perf.metrics
    counter_values = (counter_snapshot if counter_snapshot is not None
                      else perf.snapshot())
    lines: List[str] = []

    for name, value in sorted(counter_values.items()):
        family = metric_name(name, "_total")
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {value:g}")

    for name, histograms in sorted(_by_name(registry.histograms()).items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} histogram")
        for histogram in histograms:
            snap = histogram.snapshot()
            cumulative = 0
            for bound, count in zip(histogram.bounds, snap["counts"]):
                cumulative += count
                labels = histogram.labels + (("le", f"{bound:g}"),)
                lines.append(f"{family}_bucket{_label_str(labels)} "
                             f"{cumulative}")
            labels = histogram.labels + (("le", "+Inf"),)
            lines.append(f"{family}_bucket{_label_str(labels)} "
                         f"{snap['count']}")
            lines.append(f"{family}_sum{_label_str(histogram.labels)} "
                         f"{snap['sum']:g}")
            lines.append(f"{family}_count{_label_str(histogram.labels)} "
                         f"{snap['count']}")
        for suffix, q in QUANTILES:
            quantile_family = metric_name(name, f"_{suffix}")
            lines.append(f"# TYPE {quantile_family} gauge")
            for histogram in histograms:
                lines.append(
                    f"{quantile_family}{_label_str(histogram.labels)} "
                    f"{histogram.quantile(q):g}")

    for name, gauges in sorted(_by_name(registry.gauges()).items()):
        family = metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        for gauge in gauges:
            lines.append(f"{family}{_label_str(gauge.labels)} "
                         f"{gauge.get():g}")

    return "\n".join(lines) + "\n"
