"""A bounded structured event log for the control plane.

Every noteworthy control-plane transition — deploy outcomes, injected
faults, breaker trips, evacuations, delta-vs-full push decisions —
lands here as one typed dict, stamped with a monotonic sequence number,
wall-clock milliseconds since the log's epoch, optionally the sim
kernel's virtual time, and the trace/span ids of whatever span was
active when it fired.  The log is a ring: the oldest events are
evicted once ``max_events`` is reached (counted in
``obs.events_dropped``).

``repro events`` renders the ring as JSONL; subscribers registered via
:meth:`EventLog.subscribe` see each event as it is emitted (the
``--follow`` replay).  Subscriber callbacks run on the emitting thread,
outside the log's lock.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.perf import counters
from repro.sanitize import make_lock

#: events kept before the oldest are evicted
DEFAULT_MAX_EVENTS = 4096

Subscriber = Callable[[dict], None]


class EventLog:
    """Bounded ring of typed event dicts with live subscribers."""

    def __init__(self, *, max_events: int = DEFAULT_MAX_EVENTS,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.epoch_s = clock()
        self._events: deque = deque(  # guarded-by: _lock
            maxlen=max(1, int(max_events)))
        self._seq = 0  # guarded-by: _lock
        self.dropped = 0  # guarded-by: _lock
        self._subscribers: List[Subscriber] = []  # guarded-by: _lock
        self._lock = make_lock("obs.events")

    def emit(self, type_: str, *, trace_id: Optional[str] = None,
             span_id: Optional[str] = None,
             vtime_ms: Optional[float] = None,
             fields: Optional[dict] = None) -> dict:
        """Append one event; returns the stored dict."""
        event: Dict[str, Any] = {"seq": 0,
                                 "ts_ms": (self.clock() - self.epoch_s) * 1e3,
                                 "type": type_}
        if vtime_ms is not None:
            event["vtime_ms"] = vtime_ms
        if trace_id is not None:
            event["trace_id"] = trace_id
        if span_id is not None:
            event["span_id"] = span_id
        if fields:
            event.update(fields)
        evicted = False
        with self._lock:
            self._seq += 1
            event["seq"] = self._seq
            if len(self._events) == self._events.maxlen:
                self.dropped += 1
                evicted = True
            self._events.append(event)
            subscribers = list(self._subscribers)
        counters.incr("obs.events")
        if evicted:
            counters.incr("obs.events_dropped")
        for subscriber in subscribers:
            subscriber(event)
        return event

    def events(self, *, type_prefix: str = "",
               limit: Optional[int] = None) -> list[dict]:
        """The retained events oldest-first, optionally filtered by a
        ``type`` prefix and truncated to the most recent ``limit``."""
        with self._lock:
            retained = list(self._events)
        if type_prefix:
            retained = [event for event in retained
                        if str(event.get("type", "")).startswith(type_prefix)]
        if limit is not None:
            retained = retained[-limit:]
        return retained

    def subscribe(self, callback: Subscriber) -> None:
        with self._lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Subscriber) -> None:
        with self._lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def __repr__(self) -> str:
        return f"<EventLog {len(self._events)} events>"


def render_jsonl(events: list[dict]) -> str:
    """One compact JSON object per line, in the given order."""
    return "\n".join(json.dumps(event, default=str) for event in events)
