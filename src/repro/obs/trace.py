"""Spans, the tracer, and Chrome ``trace_event`` export.

A :class:`Span` is one timed, named unit of work on one thread
(``deploy``, ``deploy/map``, ``push/<domain>``, ...).  Spans nest: the
currently active span lives in a :mod:`contextvars` variable, so a span
opened on a dispatcher worker thread parents correctly as long as the
caller's context was copied onto the worker (the
:class:`~repro.orchestration.dispatch.DomainDispatcher` does this when
tracing is on).  Parent/child links and the trace id travel with the
span, which is what lets a ``breaker.trip`` event point back at the
exact push that tripped it.

Finished spans land in a bounded ring (oldest evicted, counted in
``trace.dropped``); :meth:`Tracer.export_chrome` turns the ring into
the Chrome ``trace_event`` JSON that Perfetto and ``chrome://tracing``
load directly, and :func:`render_tree` prints the same spans as an
indented tree for the CLI.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Callable, Dict, Optional

from repro.perf import counters
from repro.sanitize import make_lock

#: finished spans kept per tracer before the oldest are evicted
DEFAULT_MAX_SPANS = 16384

_CURRENT: ContextVar[Optional["Span"]] = ContextVar(
    "repro_obs_current_span", default=None)


def current_span() -> Optional["Span"]:
    """The innermost span active on this thread's context, if any."""
    return _CURRENT.get()


def current_ids() -> tuple[Optional[str], Optional[str]]:
    """(trace_id, span_id) of the active span, or (None, None)."""
    span = _CURRENT.get()
    if span is None:
        return None, None
    return span.trace_id, span.span_id


class _NoopSpan:
    """Shared do-nothing span handed out while tracing is disabled.

    Supports the full :class:`Span` surface (context manager, ``set``,
    id attributes) so instrumentation sites never branch beyond the
    single ``obs.enabled()`` check.
    """

    __slots__ = ()
    trace_id: Optional[str] = None
    span_id: Optional[str] = None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def end(self) -> None:
        return None


#: the singleton no-op span (allocation-free instrumentation when off)
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, named unit of work on one thread."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start_s",
                 "end_s", "thread_id", "thread_name", "attrs", "status",
                 "_tracer", "_token")

    def __init__(self, tracer: "Tracer", name: str, trace_id: str,
                 span_id: str, parent_id: Optional[str],
                 attrs: Optional[dict]) -> None:
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_s = tracer.clock()
        self.end_s: Optional[float] = None
        thread = threading.current_thread()
        self.thread_id = thread.ident or 0
        self.thread_name = thread.name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.status = "ok"
        self._tracer = tracer
        self._token = None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = exc_type.__name__
        self.end()
        return False

    def end(self) -> None:
        """Close the span; idempotent."""
        if self.end_s is not None:
            return
        self.end_s = self._tracer.clock()
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        self._tracer._finish(self)

    def __repr__(self) -> str:
        state = "open" if self.end_s is None else "closed"
        return (f"<Span {self.name} {self.span_id} "
                f"trace={self.trace_id} {state}>")


class Tracer:
    """Creates spans, tracks the open set, rings the finished ones."""

    def __init__(self, *, max_spans: int = DEFAULT_MAX_SPANS,
                 clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.epoch_s = clock()
        self._seq = 0  # guarded-by: _lock
        self._open: Dict[str, Span] = {}  # guarded-by: _lock
        self._finished: deque = deque(  # guarded-by: _lock
            maxlen=max(1, int(max_spans)))
        self.dropped = 0  # guarded-by: _lock
        self._lock = make_lock("obs.tracer")

    def start_span(self, name: str, attrs: Optional[dict] = None, *,
                   parent: Optional[Span] = None) -> Span:
        """Open a span; the caller must close it (``with`` preferred).

        With no explicit ``parent`` the span parents under the current
        context's span — a root span when there is none.
        """
        if parent is None:
            parent = _CURRENT.get()
        with self._lock:
            self._seq += 1
            sequence = self._seq
        if parent is None or parent.trace_id is None:
            trace_id = f"t{sequence}"
            parent_id = None
        else:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        span = Span(self, name, trace_id, f"s{sequence}", parent_id, attrs)
        with self._lock:
            self._open[span.span_id] = span
        counters.incr("trace.spans")
        return span

    def _finish(self, span: Span) -> None:
        evicted = False
        with self._lock:
            self._open.pop(span.span_id, None)
            if len(self._finished) == self._finished.maxlen:
                self.dropped += 1
                evicted = True
            self._finished.append(span)
        if evicted:
            counters.incr("trace.dropped")

    def spans(self) -> list[Span]:
        """Finished spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def open_spans(self) -> list[Span]:
        """Spans started but not yet closed (leaks, if lingering)."""
        with self._lock:
            return list(self._open.values())

    def export_chrome(self) -> dict:
        """The whole ring as a Chrome ``trace_event`` JSON object.

        Complete (``ph: "X"``) events carry microsecond timestamps
        relative to the tracer epoch plus trace/span/parent ids in
        ``args``; ``ph: "M"`` metadata events name each thread.  The
        result loads directly in Perfetto / ``chrome://tracing``.
        """
        pid = os.getpid()
        events: list[dict] = []
        thread_names: Dict[int, str] = {}
        for span in self.spans():
            end_s = span.end_s if span.end_s is not None else self.clock()
            args: Dict[str, Any] = {"trace_id": span.trace_id,
                                    "span_id": span.span_id}
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            if span.status != "ok":
                args["status"] = span.status
            args.update(span.attrs)
            events.append({
                "name": span.name,
                "cat": span.name.split("/", 1)[0],
                "ph": "X",
                "pid": pid,
                "tid": span.thread_id,
                "ts": (span.start_s - self.epoch_s) * 1e6,
                "dur": max(0.0, (end_s - span.start_s) * 1e6),
                "args": args,
            })
            thread_names.setdefault(span.thread_id, span.thread_name)
        for tid in sorted(thread_names):
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": thread_names[tid]},
            })
        return {"traceEvents": events, "displayTimeUnit": "ms"}


def validate_chrome_trace(data: object) -> list[str]:
    """Problems with ``data`` as a minimal Chrome trace, [] when valid.

    Checks the subset this tracer emits (and CI gates on): a top-level
    ``traceEvents`` list of objects with a name, a supported phase, and
    integer pid/tid; complete events also need non-negative ts/dur.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["top level is not a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing event name")
        phase = event.get("ph")
        if phase not in ("X", "M"):
            problems.append(f"{where}: unsupported phase {phase!r}")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                problems.append(f"{where}: {field} must be an integer")
        if phase == "X":
            for field in ("ts", "dur"):
                value = event.get(field)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"{where}: {field} must be a non-negative number")
    return problems


def render_tree(tracer: Tracer) -> str:
    """Finished spans as an indented tree (roots in start order)."""
    spans = tracer.spans()
    if not spans:
        return "(no spans recorded)"
    children: Dict[Optional[str], list[Span]] = {}
    for span in spans:
        children.setdefault(span.parent_id, []).append(span)
    for siblings in children.values():
        siblings.sort(key=lambda span: span.start_s)
    present = {span.span_id for span in spans}
    roots = [span for span in spans
             if span.parent_id is None or span.parent_id not in present]
    roots.sort(key=lambda span: span.start_s)
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        attrs = " ".join(f"{key}={value}"
                         for key, value in sorted(span.attrs.items()))
        line = (f"{'  ' * depth}{span.name} "
                f"{span.duration_s * 1e3:.2f} ms [{span.thread_name}]")
        if attrs:
            line += f" {attrs}"
        if span.status != "ok":
            line += f" !{span.status}"
        lines.append(line)
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
