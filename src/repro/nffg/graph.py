"""The NFFG container: a typed multigraph of NFs, SAPs and BiS-BiS nodes.

Built on :mod:`networkx` (MultiDiGraph) so embedding algorithms can use
standard graph routines, but exposing a typed API so orchestration code
never touches raw attribute dictionaries.
"""

from __future__ import annotations

import copy as _copy
from typing import Any, Callable, Iterable, Iterator, Optional

import networkx as nx

from repro.perf import counters
from repro.nffg.model import (
    DomainType,
    EdgeLink,
    EdgeReq,
    EdgeSGHop,
    InfraType,
    LinkType,
    NodeInfra,
    NodeNF,
    NodeSAP,
    ResourceVector,
)

NodeObj = NodeNF | NodeSAP | NodeInfra
EdgeObj = EdgeLink | EdgeSGHop | EdgeReq


class NFFGError(ValueError):
    """Raised for structurally invalid NFFG operations."""


class NFFG:
    """NF Forwarding Graph.

    One class serves three roles, exactly as in UNIFY:

    - a *service graph*: SAPs + NFs + SG hops + requirement edges;
    - a *resource view*: infra (BiS-BiS) nodes + static links;
    - a *mapped graph*: both, with NFs bound to infras via dynamic
      links and flow rules on infra ports.
    """

    def __init__(self, id: str = "NFFG", name: str = "", version: str = "1.0"):
        self.id = id
        self.name = name or id
        self.version = version
        self.metadata: dict[str, Any] = {}
        self._graph = nx.MultiDiGraph()
        self._nodes: dict[str, NodeObj] = {}
        self._edges: dict[str, EdgeObj] = {}
        self._id_seq = 0

    # ------------------------------------------------------------------
    # node management
    # ------------------------------------------------------------------

    def _register_node(self, node: NodeObj) -> NodeObj:
        if node.id in self._nodes:
            raise NFFGError(f"duplicate node id {node.id!r} in NFFG {self.id!r}")
        self._nodes[node.id] = node
        self._graph.add_node(node.id, obj=node)
        return node

    def add_nf(self, id: str, functional_type: str, *, name: str = "",
               deployment_type: str = "",
               resources: ResourceVector | None = None,
               num_ports: int = 0) -> NodeNF:
        nf = NodeNF(id=id, functional_type=functional_type, name=name,
                    deployment_type=deployment_type, resources=resources)
        for _ in range(num_ports):
            nf.add_port()
        self._register_node(nf)
        return nf

    def add_sap(self, id: str, *, name: str = "", binding: Optional[str] = None,
                num_ports: int = 1) -> NodeSAP:
        sap = NodeSAP(id=id, name=name, binding=binding)
        for _ in range(num_ports):
            sap.add_port()
        self._register_node(sap)
        return sap

    def add_infra(self, id: str, *, name: str = "",
                  infra_type: InfraType = InfraType.BISBIS,
                  domain: DomainType = DomainType.INTERNAL,
                  resources: ResourceVector | None = None,
                  supported_types: Iterable[str] = (),
                  cost_per_cpu: float = 1.0,
                  num_ports: int = 0) -> NodeInfra:
        infra = NodeInfra(id=id, name=name, infra_type=infra_type, domain=domain,
                          resources=resources, supported_types=supported_types,
                          cost_per_cpu=cost_per_cpu)
        for _ in range(num_ports):
            infra.add_port()
        self._register_node(infra)
        return infra

    def add_node_copy(self, node: NodeObj) -> NodeObj:
        """Deep-copy a node object (with ports/flowrules) into this NFFG."""
        return self._register_node(node.clone())

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise NFFGError(f"unknown node {node_id!r}")
        for edge in list(self.edges_of(node_id)):
            self.remove_edge(edge.id)
        del self._nodes[node_id]
        self._graph.remove_node(node_id)

    # -- typed accessors ------------------------------------------------

    def node(self, node_id: str) -> NodeObj:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NFFGError(f"unknown node {node_id!r} in NFFG {self.id!r}") from None

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def nfs(self) -> list[NodeNF]:
        return [n for n in self._nodes.values() if isinstance(n, NodeNF)]

    @property
    def saps(self) -> list[NodeSAP]:
        return [n for n in self._nodes.values() if isinstance(n, NodeSAP)]

    @property
    def infras(self) -> list[NodeInfra]:
        return [n for n in self._nodes.values() if isinstance(n, NodeInfra)]

    @property
    def nodes(self) -> list[NodeObj]:
        return list(self._nodes.values())

    def infra(self, node_id: str) -> NodeInfra:
        node = self.node(node_id)
        if not isinstance(node, NodeInfra):
            raise NFFGError(f"node {node_id!r} is not an infra node")
        return node

    def nf(self, node_id: str) -> NodeNF:
        node = self.node(node_id)
        if not isinstance(node, NodeNF):
            raise NFFGError(f"node {node_id!r} is not an NF node")
        return node

    def sap(self, node_id: str) -> NodeSAP:
        node = self.node(node_id)
        if not isinstance(node, NodeSAP):
            raise NFFGError(f"node {node_id!r} is not a SAP node")
        return node

    # ------------------------------------------------------------------
    # edge management
    # ------------------------------------------------------------------

    def _next_id(self, prefix: str) -> str:
        # namespaced by graph id so views built independently can be
        # merged without auto-id collisions
        while True:
            self._id_seq += 1
            candidate = f"{self.id}:{prefix}{self._id_seq}"
            if candidate not in self._edges:
                return candidate

    def _check_endpoint(self, node_id: str, port_id: str) -> None:
        node = self.node(node_id)
        if not node.has_port(port_id):
            raise NFFGError(f"node {node_id!r} has no port {port_id!r}")

    def _register_edge(self, edge: EdgeObj, link_type: LinkType) -> EdgeObj:
        if edge.id in self._edges:
            raise NFFGError(f"duplicate edge id {edge.id!r}")
        self._check_endpoint(edge.src_node, edge.src_port)
        self._check_endpoint(edge.dst_node, edge.dst_port)
        self._edges[edge.id] = edge
        self._graph.add_edge(edge.src_node, edge.dst_node, key=edge.id,
                             obj=edge, link_type=link_type)
        return edge

    def add_link(self, src_node: str, src_port: str, dst_node: str, dst_port: str,
                 *, id: Optional[str] = None, delay: float = 0.0,
                 bandwidth: float = 0.0,
                 link_type: LinkType = LinkType.STATIC,
                 bidirectional: bool = True) -> EdgeLink:
        """Add a static/dynamic link; by default also its reverse pair."""
        link_id = id or self._next_id("link")
        link = EdgeLink(id=link_id, src_node=src_node, src_port=str(src_port),
                        dst_node=dst_node, dst_port=str(dst_port),
                        link_type=link_type, delay=delay, bandwidth=bandwidth)
        self._register_edge(link, link_type)
        if bidirectional:
            back = EdgeLink(id=f"{link_id}-back", src_node=dst_node,
                            dst_node=src_node, src_port=str(dst_port),
                            dst_port=str(src_port), link_type=link_type,
                            delay=delay, bandwidth=bandwidth)
            self._register_edge(back, link_type)
        return link

    def add_sg_hop(self, src_node: str, src_port: str, dst_node: str, dst_port: str,
                   *, id: Optional[str] = None, flowclass: str = "",
                   bandwidth: float = 0.0, delay: float = 0.0) -> EdgeSGHop:
        hop = EdgeSGHop(id=id or self._next_id("hop"),
                        src_node=src_node, src_port=str(src_port),
                        dst_node=dst_node, dst_port=str(dst_port),
                        flowclass=flowclass, bandwidth=bandwidth, delay=delay)
        self._register_edge(hop, LinkType.SG)
        return hop

    def add_requirement(self, src_node: str, src_port: str, dst_node: str,
                        dst_port: str, *, sg_path: Iterable[str],
                        id: Optional[str] = None, bandwidth: float = 0.0,
                        max_delay: float = float("inf")) -> EdgeReq:
        req = EdgeReq(id=id or self._next_id("req"),
                      src_node=src_node, src_port=str(src_port),
                      dst_node=dst_node, dst_port=str(dst_port),
                      sg_path=[str(hop) for hop in sg_path],
                      bandwidth=bandwidth, max_delay=max_delay)
        for hop_id in req.sg_path:
            if hop_id not in self._edges:
                raise NFFGError(f"requirement {req.id!r} references unknown hop {hop_id!r}")
        self._register_edge(req, LinkType.REQUIREMENT)
        return req

    def add_edge_copy(self, edge: EdgeObj) -> EdgeObj:
        edge = edge.clone()
        if isinstance(edge, EdgeLink):
            return self._register_edge(edge, edge.link_type)
        if isinstance(edge, EdgeSGHop):
            return self._register_edge(edge, LinkType.SG)
        return self._register_edge(edge, LinkType.REQUIREMENT)

    def remove_edge(self, edge_id: str) -> None:
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            raise NFFGError(f"unknown edge {edge_id!r}")
        self._graph.remove_edge(edge.src_node, edge.dst_node, key=edge_id)

    # -- typed edge accessors -------------------------------------------

    def edge(self, edge_id: str) -> EdgeObj:
        try:
            return self._edges[edge_id]
        except KeyError:
            raise NFFGError(f"unknown edge {edge_id!r} in NFFG {self.id!r}") from None

    def has_edge(self, edge_id: str) -> bool:
        return edge_id in self._edges

    @property
    def links(self) -> list[EdgeLink]:
        return [e for e in self._edges.values()
                if isinstance(e, EdgeLink) and e.link_type == LinkType.STATIC]

    @property
    def dynamic_links(self) -> list[EdgeLink]:
        return [e for e in self._edges.values()
                if isinstance(e, EdgeLink) and e.link_type == LinkType.DYNAMIC]

    @property
    def sg_hops(self) -> list[EdgeSGHop]:
        return [e for e in self._edges.values() if isinstance(e, EdgeSGHop)]

    @property
    def requirements(self) -> list[EdgeReq]:
        return [e for e in self._edges.values() if isinstance(e, EdgeReq)]

    @property
    def edges(self) -> list[EdgeObj]:
        return list(self._edges.values())

    def edges_of(self, node_id: str) -> Iterator[EdgeObj]:
        """All edges incident to a node, via the graph adjacency (O(deg)
        instead of a scan over every edge)."""
        if node_id not in self._graph:
            return
        seen: set[str] = set()
        for _, _, key in list(self._graph.out_edges(node_id, keys=True)):
            seen.add(key)
            yield self._edges[key]
        for _, _, key in list(self._graph.in_edges(node_id, keys=True)):
            if key not in seen:  # self-loops appear on both sides
                yield self._edges[key]

    def out_links(self, node_id: str) -> list[EdgeLink]:
        return [e for e in self.links if e.src_node == node_id]

    def link_between(self, src_node: str, dst_node: str) -> Optional[EdgeLink]:
        for edge in self.links:
            if edge.src_node == src_node and edge.dst_node == dst_node:
                return edge
        return None

    # ------------------------------------------------------------------
    # deployment bookkeeping (NF placement)
    # ------------------------------------------------------------------

    def place_nf(self, nf_id: str, infra_id: str,
                 port_pairs: Optional[list[tuple[str, str]]] = None) -> list[EdgeLink]:
        """Bind an NF to a hosting BiS-BiS with dynamic links.

        ``port_pairs`` maps NF ports to (newly created) infra ports; by
        default every NF port gets a fresh infra port.
        """
        nf = self.nf(nf_id)
        infra = self.infra(infra_id)
        if not infra.supports(nf.functional_type):
            raise NFFGError(
                f"infra {infra_id!r} does not support NF type {nf.functional_type!r}")
        created: list[EdgeLink] = []
        if port_pairs is None:
            port_pairs = []
            for nf_port in nf.ports.values():
                infra_port = infra.add_port(f"{nf_id}-{nf_port.id}")
                port_pairs.append((nf_port.id, infra_port.id))
        for nf_port_id, infra_port_id in port_pairs:
            link = self.add_link(nf_id, nf_port_id, infra_id, infra_port_id,
                                 id=f"dyn-{nf_id}-{nf_port_id}",
                                 link_type=LinkType.DYNAMIC, bidirectional=True)
            created.append(link)
        nf.status = "placed"
        return created

    def host_of(self, nf_id: str) -> Optional[str]:
        """The infra node hosting ``nf_id``, or None if unplaced."""
        if nf_id not in self._graph:
            return None
        for _, dst, key in self._graph.out_edges(nf_id, keys=True):
            edge = self._edges[key]
            if (isinstance(edge, EdgeLink)
                    and edge.link_type == LinkType.DYNAMIC
                    and isinstance(self._nodes.get(dst), NodeInfra)):
                return dst
        return None

    def nfs_on(self, infra_id: str) -> list[NodeNF]:
        hosted: list[NodeNF] = []
        seen: set[str] = set()
        if infra_id not in self._graph:
            return hosted
        for src, _, key in self._graph.in_edges(infra_id, keys=True):
            edge = self._edges[key]
            if (not isinstance(edge, EdgeLink)
                    or edge.link_type != LinkType.DYNAMIC or src in seen):
                continue
            node = self._nodes.get(src)
            if isinstance(node, NodeNF):
                seen.add(src)
                hosted.append(node)
        return hosted

    def infra_port_of_nf(self, nf_id: str, nf_port_id: str) -> Optional[tuple[str, str]]:
        """(infra_id, infra_port_id) bound to the given NF port."""
        nf_port_id = str(nf_port_id)
        if nf_id not in self._graph:
            return None
        for _, _, key in self._graph.out_edges(nf_id, keys=True):
            edge = self._edges[key]
            if (isinstance(edge, EdgeLink)
                    and edge.link_type == LinkType.DYNAMIC
                    and edge.src_port == nf_port_id):
                return edge.dst_node, edge.dst_port
        return None

    # ------------------------------------------------------------------
    # whole-graph operations
    # ------------------------------------------------------------------

    def copy(self, new_id: Optional[str] = None) -> "NFFG":
        """Structured clone of the whole graph.

        Hand-rolled fast path: nodes, ports, flowrules and edges are
        cloned field-by-field (see ``clone()`` on the model classes)
        and the networkx adjacency dicts are filled directly — an order
        of magnitude cheaper than ``copy.deepcopy``'s generic memo walk
        on control-plane-sized views.
        """
        clone = NFFG(id=self.id if new_id is None else new_id,
                     name=self.name, version=self.version)
        clone.metadata = _copy.deepcopy(self.metadata) if self.metadata else {}
        clone._id_seq = self._id_seq
        graph = clone._graph
        node_attr, succ, pred = graph._node, graph._succ, graph._pred
        nodes = clone._nodes
        for node_id, node in self._nodes.items():
            cloned = node.clone()
            nodes[node_id] = cloned
            node_attr[node_id] = {"obj": cloned}
            succ[node_id] = {}
            pred[node_id] = {}
        edges = clone._edges
        for edge_id, edge in self._edges.items():
            cloned_edge = edge.clone()
            edges[edge_id] = cloned_edge
            if isinstance(cloned_edge, EdgeLink):
                link_type = cloned_edge.link_type
            elif isinstance(cloned_edge, EdgeSGHop):
                link_type = LinkType.SG
            else:
                link_type = LinkType.REQUIREMENT
            # straight into the MultiDiGraph adjacency: _succ[u][v] and
            # _pred[v][u] share one key dict, keyed by edge id
            src, dst = cloned_edge.src_node, cloned_edge.dst_node
            keydict = succ[src].get(dst)
            if keydict is None:
                keydict = {}
                succ[src][dst] = keydict
                pred[dst][src] = keydict
            keydict[edge_id] = {"obj": cloned_edge, "link_type": link_type}
        counters.incr("nffg.copy.calls")
        counters.incr("nffg.copy.nodes", len(nodes))
        counters.incr("nffg.copy.edges", len(edges))
        return clone

    def copy_subgraph(self, new_id: str, node_ids: Iterable[str],
                      name: str = "") -> "NFFG":
        """Clone of the subgraph spanning ``node_ids`` keeping only the
        *links* (static/dynamic) whose both endpoints are kept.

        SG hops and requirement edges are dropped: the result is a
        deployment-only view — exactly what ``split_per_domain`` hands
        to a domain adapter.  Same direct-fill fast path as
        :meth:`copy`.
        """
        clone = NFFG(id=new_id, name=name or new_id, version=self.version)
        clone._id_seq = self._id_seq
        graph = clone._graph
        node_attr, succ, pred = graph._node, graph._succ, graph._pred
        nodes = clone._nodes
        for node_id in node_ids:
            cloned = self._nodes[node_id].clone()
            nodes[node_id] = cloned
            node_attr[node_id] = {"obj": cloned}
            succ[node_id] = {}
            pred[node_id] = {}
        edges = clone._edges
        for edge_id, edge in self._edges.items():
            if not isinstance(edge, EdgeLink):
                continue
            if edge.src_node not in nodes or edge.dst_node not in nodes:
                continue
            cloned_edge = edge.clone()
            edges[edge_id] = cloned_edge
            src, dst = cloned_edge.src_node, cloned_edge.dst_node
            keydict = succ[src].get(dst)
            if keydict is None:
                keydict = {}
                succ[src][dst] = keydict
                pred[dst][src] = keydict
            keydict[edge_id] = {"obj": cloned_edge,
                                "link_type": cloned_edge.link_type}
        return clone

    def placed_nfs(self) -> list[tuple[str, NodeNF]]:
        """``(hosting_infra_id, NF)`` for every bound NF — one pass over
        the edge table instead of a per-infra ``nfs_on`` scan."""
        result: list[tuple[str, NodeNF]] = []
        seen: set[str] = set()
        for edge in self._edges.values():
            if (not isinstance(edge, EdgeLink)
                    or edge.link_type != LinkType.DYNAMIC
                    or edge.src_node in seen):
                continue
            nf = self._nodes.get(edge.src_node)
            if (isinstance(nf, NodeNF)
                    and isinstance(self._nodes.get(edge.dst_node), NodeInfra)):
                seen.add(edge.src_node)
                result.append((edge.dst_node, nf))
        return result

    def clear_flowrules(self) -> None:
        for infra in self.infras:
            for port in infra.ports.values():
                port.clear_flowrules()

    def infra_topology(self) -> nx.MultiDiGraph:
        """Subgraph of infra nodes and static links (for path finding)."""
        topo = nx.MultiDiGraph()
        for infra in self.infras:
            topo.add_node(infra.id, obj=infra)
        for link in self.links:
            if link.src_node in topo and link.dst_node in topo:
                topo.add_edge(link.src_node, link.dst_node, key=link.id,
                              obj=link, delay=link.delay,
                              bandwidth=link.bandwidth)
        return topo

    def connected_infra(self, infra_id: str) -> list[tuple[EdgeLink, NodeInfra]]:
        result = []
        for link in self.out_links(infra_id):
            dst = self.node(link.dst_node)
            if isinstance(dst, NodeInfra):
                result.append((link, dst))
        return result

    def sap_bindings(self) -> dict[str, tuple[str, str]]:
        """Map SAP id -> (infra_id, port_id) via sap-tagged infra ports."""
        bindings: dict[str, tuple[str, str]] = {}
        for infra in self.infras:
            for port in infra.ports.values():
                if port.sap_tag is not None:
                    bindings[port.sap_tag] = (infra.id, port.id)
        return bindings

    def validate(self) -> list[str]:
        """Return a list of structural problems (empty = valid)."""
        problems: list[str] = []
        for edge in self._edges.values():
            for node_id, port_id, role in ((edge.src_node, edge.src_port, "src"),
                                           (edge.dst_node, edge.dst_port, "dst")):
                if node_id not in self._nodes:
                    problems.append(f"edge {edge.id}: {role} node {node_id!r} missing")
                elif not self._nodes[node_id].has_port(port_id):
                    problems.append(
                        f"edge {edge.id}: {role} port {node_id}.{port_id} missing")
        for hop in self.sg_hops:
            for endpoint in (hop.src_node, hop.dst_node):
                node = self._nodes.get(endpoint)
                if node is not None and isinstance(node, NodeInfra):
                    problems.append(f"SG hop {hop.id} touches infra node {endpoint}")
        for req in self.requirements:
            for hop_id in req.sg_path:
                if hop_id not in self._edges:
                    problems.append(f"requirement {req.id}: unknown hop {hop_id!r}")
        for link in self.links:
            if link.reserved - link.bandwidth > 1e-9:
                problems.append(f"link {link.id}: reserved {link.reserved} "
                                f"exceeds capacity {link.bandwidth}")
        return problems

    def is_valid(self) -> bool:
        return not self.validate()

    # -- statistics ------------------------------------------------------

    def summary(self) -> dict[str, int]:
        return {
            "nfs": len(self.nfs),
            "saps": len(self.saps),
            "infras": len(self.infras),
            "static_links": len(self.links),
            "dynamic_links": len(self.dynamic_links),
            "sg_hops": len(self.sg_hops),
            "requirements": len(self.requirements),
            "flowrules": sum(len(p.flowrules) for n in self.infras
                             for p in n.ports.values()),
        }

    def filter_nodes(self, predicate: Callable[[NodeObj], bool]) -> list[NodeObj]:
        return [node for node in self._nodes.values() if predicate(node)]

    def __repr__(self) -> str:
        s = self.summary()
        return (f"<NFFG {self.id}: {s['nfs']} NFs, {s['saps']} SAPs, "
                f"{s['infras']} infras, {s['sg_hops']} hops>")
