"""NFFG — the joint compute + network resource abstraction.

The UNIFY architecture describes both *service requests* and *resource
topologies* with one graph model, the Network Function Forwarding Graph:

- **NF** nodes: network functions with compute/memory/storage demands;
- **SAP** nodes: service access points (where user traffic enters);
- **Infra** nodes: infrastructure elements — most importantly the
  **BiS-BiS** ("Big Switch with Big Software"): a forwarding element
  fused with compute/storage able to host NFs and steer traffic among
  its ports via flow rules;
- **static links** between infra nodes (the substrate topology),
  **SG hops** between NFs/SAPs (the requested chain), **requirement
  edges** carrying end-to-end bandwidth/delay constraints, and
  **dynamic links** binding a placed NF's ports to its host BiS-BiS.

SFC programming per the paper is exactly (i) assigning NF nodes to
BiS-BiS nodes and (ii) editing flow rules within BiS-BiS nodes; both are
expressible as NFFG mutations.
"""

from repro.nffg.model import (
    DomainType,
    EdgeLink,
    EdgeReq,
    EdgeSGHop,
    Flowrule,
    InfraType,
    LinkType,
    NodeInfra,
    NodeNF,
    NodeSAP,
    NodeType,
    Port,
    ResourceVector,
)
from repro.nffg.graph import NFFG, NFFGError
from repro.nffg.builder import NFFGBuilder
from repro.nffg.ops import (
    available_resources,
    merge_nffgs,
    remaining_nffg,
    split_per_domain,
    strip_deployment,
)
from repro.nffg.serialize import nffg_from_dict, nffg_from_json, nffg_to_dict, nffg_to_json

__all__ = [
    "NFFG",
    "NFFGError",
    "NFFGBuilder",
    "DomainType",
    "EdgeLink",
    "EdgeReq",
    "EdgeSGHop",
    "Flowrule",
    "InfraType",
    "LinkType",
    "NodeInfra",
    "NodeNF",
    "NodeSAP",
    "NodeType",
    "Port",
    "ResourceVector",
    "available_resources",
    "merge_nffgs",
    "remaining_nffg",
    "split_per_domain",
    "strip_deployment",
    "nffg_from_dict",
    "nffg_from_json",
    "nffg_to_dict",
    "nffg_to_json",
]
