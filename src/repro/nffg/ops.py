"""Whole-graph NFFG operations used by the orchestration layers.

- :func:`merge_nffgs` stitches per-domain views into one global view
  (inter-domain SAP ports carrying the same ``sap_tag`` are fused with
  an inter-domain static link);
- :func:`split_per_domain` slices a mapped global NFFG back into one
  install-NFFG per technology domain;
- :func:`available_resources` / :func:`remaining_nffg` compute what is
  left of a resource view after the currently placed NFs and reserved
  SG hops are subtracted — this is what a virtualizer advertises
  northbound.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.nffg.graph import NFFG, NFFGError
from repro.nffg.model import (
    DomainType,
    EdgeLink,
    LinkType,
    NodeNF,
    ResourceVector,
)


def merge_nffgs(views: Iterable[NFFG], merged_id: str = "global-view", *,
                stitch: bool = True) -> NFFG:
    """Merge domain views into a single global resource view.

    Node ids must be globally unique across domains (domain managers
    prefix their node ids); a collision raises :class:`NFFGError`
    naming both offending views.  Infra ports tagged with the same
    ``sap_tag`` on *different* nodes are connected with an inter-domain
    link of zero cost; the tag is treated as the physical hand-off
    between providers.

    With ``stitch=False`` the tag pairing is skipped: the merge is a
    pure union and tagged ports stay open.  The sharded CAL merges each
    shard's member views this way — a tag pair may span two shards, so
    only the final shard-of-shards merge is allowed to stitch (pairing
    twice would mint duplicate ``interdomain-*`` link ids).
    """
    merged = NFFG(id=merged_id, name="merged global view")
    tag_endpoints: dict[str, list[tuple[str, str]]] = {}
    node_owner: dict[str, str] = {}
    for view in views:
        for node in view.nodes:
            if node.id in node_owner:
                raise NFFGError(
                    f"cannot merge domain views: node id {node.id!r} "
                    f"appears in both {node_owner[node.id]!r} and "
                    f"{view.id!r}; domain managers must prefix their "
                    "node ids to keep them globally unique")
            node_owner[node.id] = view.id
            merged.add_node_copy(node)
        for edge in view.edges:
            merged.add_edge_copy(edge)
        for infra in view.infras:
            for port in infra.ports.values():
                if port.sap_tag is not None:
                    tag_endpoints.setdefault(port.sap_tag, []).append(
                        (infra.id, port.id))
    for tag, endpoints in sorted(tag_endpoints.items()) if stitch else ():
        if len(endpoints) < 2:
            continue
        if len(endpoints) > 2:
            raise NFFGError(
                f"sap_tag {tag!r} appears on {len(endpoints)} ports; "
                "inter-domain tags must pair exactly two ports")
        (node_a, port_a), (node_b, port_b) = endpoints
        merged.add_link(node_a, port_a, node_b, port_b,
                        id=f"interdomain-{tag}",
                        delay=_INTERDOMAIN_DELAY, bandwidth=_INTERDOMAIN_BW)
    return merged


#: defaults for the stitched inter-domain links; real systems learn these
#: from BGP-LS / peering contracts, the prototype hard-wires the peering.
_INTERDOMAIN_DELAY = 1.0
_INTERDOMAIN_BW = 10_000.0


def split_per_domain(mapped: NFFG) -> dict[DomainType, NFFG]:
    """Slice a mapped global NFFG into per-domain install graphs.

    Each domain receives its own infra nodes, the NFs placed on them,
    the dynamic links binding those NFs, intra-domain static links and
    the flow rules already resident on its infra ports.  Inter-domain
    links (endpoints in different domains) are dropped — the hand-off
    is represented by sap-tagged ports on both sides.

    A domain's membership set (its infras + hosted NFs + SAPs tagged on
    its ports) is computed first, then materialized with the subgraph
    fast path: a link survives exactly when both endpoints are members,
    SG hops and requirements never enter an install view.  This runs on
    every ``push_all`` and is kept off the generic per-element copy API
    on purpose.
    """
    # per-domain node membership: infras first, then hosted NFs, then
    # SAPs (insertion order of the member lists is the install order)
    members: dict[DomainType, list[str]] = {}
    infra_domain: dict[str, DomainType] = {}
    for infra in mapped.infras:
        infra_domain[infra.id] = infra.domain
        members.setdefault(infra.domain, []).append(infra.id)

    for host, nf in mapped.placed_nfs():
        members[infra_domain[host]].append(nf.id)

    sap_ids = {sap.id for sap in mapped.saps}
    tagged: dict[DomainType, set[str]] = {}
    for infra in mapped.infras:
        for port in infra.ports.values():
            if port.sap_tag in sap_ids:
                domain_tags = tagged.setdefault(infra.domain, set())
                if port.sap_tag not in domain_tags:
                    domain_tags.add(port.sap_tag)
                    members[infra.domain].append(port.sap_tag)

    return {domain: mapped.copy_subgraph(
                f"{mapped.id}@{domain.value}", node_ids,
                name=f"install view for {domain.value}")
            for domain, node_ids in members.items()}


def consumed_resources(view: NFFG, infra_id: str) -> ResourceVector:
    """Sum of resource demands of NFs currently placed on ``infra_id``."""
    total = ResourceVector()
    for nf in view.nfs_on(infra_id):
        total = total + nf.resources
    return total


def available_resources(view: NFFG, infra_id: str) -> ResourceVector:
    """Capacity minus consumption for one infra node."""
    infra = view.infra(infra_id)
    return infra.resources - consumed_resources(view, infra_id)


def remaining_nffg(view: NFFG, new_id: Optional[str] = None, *,
                   include_deployed: bool = True) -> NFFG:
    """A copy of ``view`` whose infra capacities are the *free* resources
    and link bandwidths the *unreserved* bandwidths.

    This is the graph a virtualizer exposes northbound: the client plans
    against what is actually left.

    With ``include_deployed=False`` the deployed NFs, their dynamic
    links and the carried SG hop/requirement edges are left out: the
    advertised view is substrate + SAPs + net capacities only.  That is
    what a real virtualizer shows a client (tenant internals are not
    advertised), it keeps the view's size independent of how much has
    been deployed, and it makes downstream accounting correct — a
    ledger built over a view that nets out the deployed NFs *and* still
    contains them would subtract their demands a second time.
    """
    if include_deployed:
        result = view.copy(new_id or f"{view.id}-remaining")
    else:
        result = view.copy_subgraph(
            new_id or f"{view.id}-remaining",
            [node.id for node in view.nodes if not isinstance(node, NodeNF)],
            name=f"{view.name} (remaining)")
    # one pass over the edge table for all placements instead of a
    # per-infra nfs_on scan (this runs on every resource_view call)
    consumed: dict[str, ResourceVector] = {}
    for infra_id, nf in view.placed_nfs():
        total = consumed.get(infra_id)
        consumed[infra_id] = (nf.resources if total is None
                              else total + nf.resources)
    for infra in result.infras:
        used = consumed.get(infra.id)
        free = infra.resources if used is None else infra.resources - used
        infra.resources = ResourceVector(
            cpu=max(free.cpu, 0.0), mem=max(free.mem, 0.0),
            storage=max(free.storage, 0.0),
            bandwidth=max(infra.resources.bandwidth, 0.0),
            delay=infra.resources.delay)
    for link in result.links:
        link.bandwidth = max(link.available_bandwidth, 0.0)
        link.reserved = 0.0
    return result


def strip_deployment(view: NFFG, new_id: Optional[str] = None) -> NFFG:
    """Remove NFs, dynamic links, SG hops and flow rules: bare topology."""
    result = view.copy(new_id or f"{view.id}-bare")
    for req in list(result.requirements):
        result.remove_edge(req.id)
    for hop in list(result.sg_hops):
        result.remove_edge(hop.id)
    for edge in list(result.dynamic_links):
        result.remove_edge(edge.id)
    for nf in list(result.nfs):
        result.remove_node(nf.id)
    result.clear_flowrules()
    for link in result.links:
        link.reserved = 0.0
    # drop NF-binding ports created by place_nf
    for infra in result.infras:
        dangling = [pid for pid, port in infra.ports.items()
                    if pid.count("-") and not port.sap_tag
                    and not _port_used(result, infra.id, pid)]
        for pid in dangling:
            del infra.ports[pid]
    return result


def _port_used(view: NFFG, node_id: str, port_id: str) -> bool:
    for edge in view.edges:
        if ((edge.src_node == node_id and edge.src_port == port_id)
                or (edge.dst_node == node_id and edge.dst_port == port_id)):
            return True
    return False
