"""NFFG (de)serialization to plain dicts / JSON.

The UNIFY prototype exchanges NFFGs as JSON on the Sl-Or interface; we
keep the same discipline so orchestration layers never share object
references across layer boundaries.
"""

from __future__ import annotations

import json
from typing import Any

from repro.nffg.graph import NFFG, NFFGError
from repro.nffg.model import (
    EdgeLink,
    EdgeReq,
    EdgeSGHop,
    LinkType,
    NodeInfra,
    NodeNF,
    NodeSAP,
)

_NODE_LOADERS = {
    "NF": NodeNF.from_dict,
    "SAP": NodeSAP.from_dict,
    "INFRA": NodeInfra.from_dict,
}


def nffg_to_dict(nffg: NFFG) -> dict[str, Any]:
    """Serialize an NFFG to a JSON-compatible dict."""
    return {
        "id": nffg.id,
        "name": nffg.name,
        "version": nffg.version,
        "metadata": dict(nffg.metadata),
        "nodes": [node.to_dict() for node in nffg.nodes],
        "edges": [edge.to_dict() for edge in nffg.edges],
    }


def nffg_from_dict(data: dict[str, Any]) -> NFFG:
    """Rebuild an NFFG from :func:`nffg_to_dict` output."""
    nffg = NFFG(id=data.get("id", "NFFG"), name=data.get("name", ""),
                version=data.get("version", "1.0"))
    nffg.metadata.update(data.get("metadata", {}))
    for node_data in data.get("nodes", []):
        node_type = node_data.get("type")
        loader = _NODE_LOADERS.get(node_type)
        if loader is None:
            raise NFFGError(f"unknown node type {node_type!r}")
        nffg.add_node_copy(loader(node_data))
    for edge_data in data.get("edges", []):
        edge_type = edge_data.get("type", "STATIC")
        if edge_type in (LinkType.STATIC.value, LinkType.DYNAMIC.value):
            nffg.add_edge_copy(EdgeLink.from_dict(edge_data))
        elif edge_type == LinkType.SG.value:
            nffg.add_edge_copy(EdgeSGHop.from_dict(edge_data))
        elif edge_type == LinkType.REQUIREMENT.value:
            nffg.add_edge_copy(EdgeReq.from_dict(edge_data))
        else:
            raise NFFGError(f"unknown edge type {edge_type!r}")
    return nffg


def nffg_to_json(nffg: NFFG, indent: int | None = None) -> str:
    return json.dumps(nffg_to_dict(nffg), indent=indent, sort_keys=True)


def nffg_from_json(payload: str) -> NFFG:
    return nffg_from_dict(json.loads(payload))
