"""Fluent builders for common NFFG shapes.

Service developers in the paper's GUI draw chains; programmatically the
equivalent is :class:`NFFGBuilder` which grows a service graph, and the
topology helpers used throughout tests and benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.nffg.graph import NFFG, NFFGError
from repro.nffg.model import DomainType, InfraType, ResourceVector


class NFFGBuilder:
    """Build a *service graph* (SAPs, NFs, hops, requirements) fluently.

    >>> sg = (NFFGBuilder("web-chain")
    ...       .sap("u").sap("s")
    ...       .nf("fw", "firewall")
    ...       .chain("u", "fw", "s", bandwidth=5.0)
    ...       .build())
    >>> len(sg.sg_hops)
    2
    """

    def __init__(self, id: str = "service"):
        self._nffg = NFFG(id=id)
        self._hop_seq = 0

    def sap(self, sap_id: str, name: str = "") -> "NFFGBuilder":
        self._nffg.add_sap(sap_id, name=name)
        return self

    def nf(self, nf_id: str, functional_type: str, *,
           cpu: float = 1.0, mem: float = 128.0, storage: float = 1.0,
           deployment_type: str = "", num_ports: int = 2) -> "NFFGBuilder":
        self._nffg.add_nf(nf_id, functional_type,
                          deployment_type=deployment_type,
                          resources=ResourceVector(cpu=cpu, mem=mem, storage=storage),
                          num_ports=num_ports)
        return self

    def hop(self, src: str, dst: str, *, flowclass: str = "",
            bandwidth: float = 0.0, delay: float = 0.0,
            src_port: Optional[str] = None,
            dst_port: Optional[str] = None) -> "NFFGBuilder":
        """Add one SG hop; ports auto-picked (SAP port 1, NF in=1/out=2)."""
        self._hop_seq += 1
        src_node = self._nffg.node(src)
        dst_node = self._nffg.node(dst)
        src_port = src_port or self._egress_port(src_node)
        dst_port = dst_port or self._ingress_port(dst_node)
        self._nffg.add_sg_hop(src, src_port, dst, dst_port,
                              id=f"{self._nffg.id}-hop{self._hop_seq}",
                              flowclass=flowclass, bandwidth=bandwidth,
                              delay=delay)
        return self

    def chain(self, *node_ids: str, flowclass: str = "",
              bandwidth: float = 0.0) -> "NFFGBuilder":
        """Chain nodes in order with SG hops."""
        if len(node_ids) < 2:
            raise NFFGError("chain needs at least two nodes")
        for src, dst in zip(node_ids, node_ids[1:]):
            self.hop(src, dst, flowclass=flowclass, bandwidth=bandwidth)
        return self

    def requirement(self, src: str, dst: str, *, max_delay: float = float("inf"),
                    bandwidth: float = 0.0,
                    sg_path: Optional[Sequence[str]] = None) -> "NFFGBuilder":
        """End-to-end requirement; sg_path defaults to the hop sequence
        that currently connects ``src`` to ``dst``.

        A ``bandwidth`` requirement acts as a *floor*: every hop on the
        requirement path is raised to at least that demand, so the
        embedder reserves end-to-end capacity.
        """
        path = list(sg_path) if sg_path is not None else self._find_path(src, dst)
        src_node = self._nffg.node(src)
        dst_node = self._nffg.node(dst)
        self._nffg.add_requirement(
            src, self._egress_port(src_node), dst, self._ingress_port(dst_node),
            sg_path=path, bandwidth=bandwidth, max_delay=max_delay)
        if bandwidth > 0:
            for hop_id in path:
                hop = self._nffg.edge(hop_id)
                if hasattr(hop, "bandwidth"):
                    hop.bandwidth = max(hop.bandwidth, bandwidth)
        return self

    def build(self) -> NFFG:
        problems = self._nffg.validate()
        if problems:
            raise NFFGError("invalid service graph: " + "; ".join(problems))
        return self._nffg

    # -- helpers ---------------------------------------------------------

    @staticmethod
    def _ingress_port(node) -> str:
        ports = list(node.ports)
        if not ports:
            raise NFFGError(f"node {node.id!r} has no ports")
        return ports[0]

    @staticmethod
    def _egress_port(node) -> str:
        ports = list(node.ports)
        if not ports:
            raise NFFGError(f"node {node.id!r} has no ports")
        return ports[-1]

    def _find_path(self, src: str, dst: str) -> list[str]:
        """Follow SG hops from src to dst (chains only, no branching)."""
        path: list[str] = []
        current = src
        visited = {src}
        while current != dst:
            next_hops = [h for h in self._nffg.sg_hops if h.src_node == current]
            if not next_hops:
                raise NFFGError(f"no SG path from {src!r} to {dst!r}")
            hop = next_hops[0]
            path.append(hop.id)
            current = hop.dst_node
            if current in visited:
                raise NFFGError(f"SG hop loop while tracing {src!r}->{dst!r}")
            visited.add(current)
        return path


def single_bisbis_view(view_id: str = "single-bisbis", *,
                       cpu: float = 64.0, mem: float = 65536.0,
                       storage: float = 1024.0, bandwidth: float = 40_000.0,
                       delay: float = 0.1,
                       supported_types: Sequence[str] = (),
                       sap_tags: Sequence[str] = ()) -> NFFG:
    """The paper's trivial client view: one big BiS-BiS node.

    "If a service orchestrator sees only a single BiS-BiS node then its
    orchestration task is trivial" — all placement is delegated to the
    lower layer.
    """
    view = NFFG(id=view_id, name="single BiS-BiS view")
    infra = view.add_infra(
        "bisbis0", infra_type=InfraType.BISBIS, domain=DomainType.VIRTUAL,
        resources=ResourceVector(cpu=cpu, mem=mem, storage=storage,
                                 bandwidth=bandwidth, delay=delay),
        supported_types=supported_types)
    for tag in sap_tags:
        infra.add_port(f"sap-{tag}", sap_tag=tag)
        sap = view.add_sap(tag)
        view.add_link(tag, list(sap.ports)[0], infra.id, f"sap-{tag}",
                      id=f"lnk-{tag}", bandwidth=bandwidth)
    return view


def linear_substrate(num_nodes: int, *, id: str = "substrate",
                     domain: DomainType = DomainType.INTERNAL,
                     cpu: float = 16.0, mem: float = 16384.0,
                     storage: float = 256.0, node_bw: float = 10_000.0,
                     link_bw: float = 1_000.0, link_delay: float = 1.0,
                     supported_types: Sequence[str] = ()) -> NFFG:
    """A chain of BiS-BiS nodes with SAPs at both ends."""
    view = NFFG(id=id)
    previous = None
    for index in range(num_nodes):
        infra = view.add_infra(
            f"{id}-bb{index}", domain=domain,
            resources=ResourceVector(cpu=cpu, mem=mem, storage=storage,
                                     bandwidth=node_bw, delay=0.1),
            supported_types=supported_types)
        if previous is not None:
            port_a = previous.add_port(f"to-{infra.id}")
            port_b = infra.add_port(f"to-{previous.id}")
            view.add_link(previous.id, port_a.id, infra.id, port_b.id,
                          bandwidth=link_bw, delay=link_delay)
        previous = infra
    first, last = view.infras[0], view.infras[-1]
    for sap_id, infra in (("sap1", first), ("sap2", last)):
        sap = view.add_sap(sap_id)
        port = infra.add_port(f"sap-{sap_id}", sap_tag=sap_id)
        view.add_link(sap_id, list(sap.ports)[0], infra.id, port.id,
                      bandwidth=link_bw, delay=0.0)
    return view


def mesh_substrate(num_nodes: int, degree: int = 3, *, id: str = "mesh",
                   seed: int = 1, domain: DomainType = DomainType.INTERNAL,
                   cpu: float = 16.0, mem: float = 16384.0,
                   link_bw: float = 1_000.0, link_delay: float = 1.0,
                   supported_types: Sequence[str] = ()) -> NFFG:
    """A random connected substrate (ring + chords) for scale benches."""
    import random

    rng = random.Random(seed)
    view = NFFG(id=id)
    for index in range(num_nodes):
        view.add_infra(
            f"{id}-bb{index}", domain=domain,
            resources=ResourceVector(cpu=cpu, mem=mem, storage=256.0,
                                     bandwidth=10_000.0, delay=0.1),
            supported_types=supported_types)
    infras = view.infras

    def connect(a, b):
        if view.link_between(a.id, b.id) is not None:
            return
        port_a = a.add_port(f"to-{b.id}")
        port_b = b.add_port(f"to-{a.id}")
        view.add_link(a.id, port_a.id, b.id, port_b.id,
                      bandwidth=link_bw, delay=link_delay)

    for index in range(num_nodes):
        connect(infras[index], infras[(index + 1) % num_nodes])
    extra = max(0, (degree - 2) * num_nodes // 2)
    for _ in range(extra):
        a, b = rng.sample(infras, 2)
        connect(a, b)
    sap_nodes = rng.sample(infras, min(2, num_nodes))
    for i, infra in enumerate(sap_nodes, start=1):
        sap_id = f"sap{i}"
        sap = view.add_sap(sap_id)
        port = infra.add_port(f"sap-{sap_id}", sap_tag=sap_id)
        view.add_link(sap_id, list(sap.ports)[0], infra.id, port.id,
                      bandwidth=link_bw, delay=0.0)
    return view
