"""Element classes of the NFFG model: resources, ports, nodes, edges.

The model follows the UNIFY NFFG used by ESCAPEv2: three node types
(NF, SAP, Infra/BiS-BiS), four edge types (static link, dynamic link,
SG hop, requirement), ports on every node and flow rules attached to
infra ports.

Every element exposes ``clone()``: a structured deep copy that walks
the known fields directly instead of going through ``copy.deepcopy``'s
generic memo machinery — the basis of the :meth:`NFFG.copy` fast path.
"""

from __future__ import annotations

import copy as _copy
import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional


def _clone_payload(data: dict) -> dict:
    """Copy a metadata/capabilities dict.

    Values are almost always scalars or small lists; ``deepcopy`` is
    only paid when the dict is non-empty.
    """
    return _copy.deepcopy(data) if data else {}


class NodeType(str, enum.Enum):
    NF = "NF"
    SAP = "SAP"
    INFRA = "INFRA"


class InfraType(str, enum.Enum):
    """Capability class of an infrastructure node."""

    BISBIS = "BiSBiS"          #: joint forwarding + compute element
    SDN_SWITCH = "SDN-SWITCH"  #: forwarding only (no NF hosting)
    EE = "EE"                  #: execution environment only (no steering)
    STATIC_EE = "STATIC-EE"    #: legacy appliance — fixed NFs


class DomainType(str, enum.Enum):
    """Technology domain an infra node belongs to (Fig. 1 of the paper)."""

    INTERNAL = "INTERNAL"          #: Mininet-like emulated domain
    OPENSTACK = "OPENSTACK"        #: legacy DC: OpenStack + OpenDaylight
    SDN = "SDN"                    #: legacy OpenFlow network + POX
    UN = "UNIVERSAL-NODE"          #: Universal Node
    UNIFY = "UNIFY"                #: a child UNIFY domain (recursion)
    VIRTUAL = "VIRTUAL"            #: abstract node in a virtual view


class LinkType(str, enum.Enum):
    STATIC = "STATIC"        #: infra-infra substrate link
    DYNAMIC = "DYNAMIC"      #: NF port <-> hosting BiS-BiS port
    SG = "SG"                #: service-graph hop (NF/SAP level)
    REQUIREMENT = "REQ"      #: end-to-end requirement edge


@dataclass(frozen=True)
class ResourceVector:
    """Joint compute + network resource vector.

    ``cpu`` is in vCPU cores, ``mem``/``storage`` in MB, ``bandwidth``
    in Mbit/s (node internal switching capacity for infras, demand for
    SG hops), ``delay`` in ms (node traversal / link propagation).
    """

    cpu: float = 0.0
    mem: float = 0.0
    storage: float = 0.0
    bandwidth: float = 0.0
    delay: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            cpu=self.cpu + other.cpu,
            mem=self.mem + other.mem,
            storage=self.storage + other.storage,
            bandwidth=self.bandwidth + other.bandwidth,
            delay=self.delay + other.delay,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            cpu=self.cpu - other.cpu,
            mem=self.mem - other.mem,
            storage=self.storage - other.storage,
            bandwidth=self.bandwidth - other.bandwidth,
            delay=self.delay - other.delay,
        )

    def scaled(self, factor: float) -> "ResourceVector":
        return ResourceVector(
            cpu=self.cpu * factor,
            mem=self.mem * factor,
            storage=self.storage * factor,
            bandwidth=self.bandwidth * factor,
            delay=self.delay * factor,
        )

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """True if this demand fits into ``capacity`` (delay ignored —
        delay is a path constraint, not a consumable)."""
        eps = 1e-9
        return (self.cpu <= capacity.cpu + eps
                and self.mem <= capacity.mem + eps
                and self.storage <= capacity.storage + eps
                and self.bandwidth <= capacity.bandwidth + eps)

    def non_negative(self) -> bool:
        eps = 1e-9
        return (self.cpu >= -eps and self.mem >= -eps
                and self.storage >= -eps and self.bandwidth >= -eps)

    def to_dict(self) -> dict[str, float]:
        return {
            "cpu": float(self.cpu),
            "mem": float(self.mem),
            "storage": float(self.storage),
            "bandwidth": float(self.bandwidth),
            "delay": float(self.delay),
        }

    @classmethod
    def from_dict(cls, data: dict[str, float]) -> "ResourceVector":
        return cls(**{key: float(value) for key, value in data.items()})


@dataclass
class Port:
    """A port on an NFFG node.

    ``sap_tag`` marks inter-domain SAP ports: two infra ports in
    different domains carrying the same tag represent the same physical
    hand-off point, which is how the merged global view is stitched.
    """

    id: str
    node_id: str = ""
    name: str = ""
    sap_tag: Optional[str] = None
    capabilities: dict[str, Any] = field(default_factory=dict)
    flowrules: list["Flowrule"] = field(default_factory=list)

    def add_flowrule(self, match: str, action: str, bandwidth: float = 0.0,
                     hop_id: Optional[str] = None, delay: float = 0.0) -> "Flowrule":
        rule = Flowrule(match=match, action=action, bandwidth=bandwidth,
                        hop_id=hop_id, delay=delay)
        self.flowrules.append(rule)
        return rule

    def clear_flowrules(self) -> None:
        self.flowrules.clear()

    def clone(self) -> "Port":
        # bypasses __init__: Port.clone dominates NFFG.copy, which is
        # the control-plane hot loop (one copy per resource view /
        # mapped graph / install slice)
        port = Port.__new__(Port)
        data = port.__dict__
        data.update(self.__dict__)
        data["capabilities"] = _clone_payload(self.capabilities)
        # Flowrule is immutable: share the instances, copy the list
        data["flowrules"] = list(self.flowrules) if self.flowrules else []
        return port

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"id": self.id}
        if self.name:
            data["name"] = self.name
        if self.sap_tag is not None:
            data["sap_tag"] = self.sap_tag
        if self.capabilities:
            data["capabilities"] = dict(self.capabilities)
        if self.flowrules:
            data["flowrules"] = [rule.to_dict() for rule in self.flowrules]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any], node_id: str = "") -> "Port":
        port = cls(id=str(data["id"]), node_id=node_id,
                   name=data.get("name", ""), sap_tag=data.get("sap_tag"),
                   capabilities=dict(data.get("capabilities", {})))
        for rule_data in data.get("flowrules", []):
            port.flowrules.append(Flowrule.from_dict(rule_data))
        return port


@dataclass(frozen=True)
class Flowrule:
    """A flow rule inside a BiS-BiS: steering between two of its ports.

    ``match`` and ``action`` use a tiny textual syntax mirroring
    ESCAPE's: ``in_port=<p>;flowclass=<spec>`` matches, and
    ``output=<p>;tag=<t>`` / ``untag`` actions.  ``hop_id`` back-links
    the SG hop this rule realizes so rules can be garbage-collected when
    a chain is torn down.

    Frozen: rule changes are modeled by replacing the instance in its
    port's ``flowrules`` list, which lets clones share rule objects.
    """

    match: str
    action: str
    bandwidth: float = 0.0
    delay: float = 0.0
    hop_id: Optional[str] = None

    def clone(self) -> "Flowrule":
        return self  # immutable: sharing is safe

    def match_fields(self) -> dict[str, str]:
        return _parse_kv(self.match)

    def action_fields(self) -> dict[str, str]:
        return _parse_kv(self.action)

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"match": self.match, "action": self.action}
        if self.bandwidth:
            data["bandwidth"] = self.bandwidth
        if self.delay:
            data["delay"] = self.delay
        if self.hop_id is not None:
            data["hop_id"] = self.hop_id
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Flowrule":
        return cls(match=data["match"], action=data["action"],
                   bandwidth=float(data.get("bandwidth", 0.0)),
                   delay=float(data.get("delay", 0.0)),
                   hop_id=data.get("hop_id"))


def _parse_kv(spec: str) -> dict[str, str]:
    """Parse ``key=value;key2=value2`` (bare keys map to empty string)."""
    fields: dict[str, str] = {}
    for token in spec.split(";"):
        token = token.strip()
        if not token:
            continue
        if "=" in token:
            key, _, value = token.partition("=")
            fields[key.strip()] = value.strip()
        else:
            fields[token] = ""
    return fields


class _NodeBase:
    """Shared behaviour for the three node classes."""

    type: NodeType

    def __init__(self, id: str, name: str = ""):
        self.id = id
        self.name = name or id
        self.ports: dict[str, Port] = {}
        self.metadata: dict[str, Any] = {}

    def add_port(self, port_id: Optional[str] = None, **kwargs: Any) -> Port:
        if port_id is None:
            port_id = str(len(self.ports) + 1)
        port_id = str(port_id)
        if port_id in self.ports:
            raise ValueError(f"duplicate port {port_id!r} on node {self.id!r}")
        port = Port(id=port_id, node_id=self.id, **kwargs)
        self.ports[port_id] = port
        return port

    def port(self, port_id: str) -> Port:
        return self.ports[str(port_id)]

    def has_port(self, port_id: str) -> bool:
        return str(port_id) in self.ports

    def iter_flowrules(self) -> Iterable[tuple[Port, Flowrule]]:
        for port in self.ports.values():
            for rule in port.flowrules:
                yield port, rule

    def _base_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"id": self.id, "type": self.type.value}
        if self.name != self.id:
            data["name"] = self.name
        if self.ports:
            data["ports"] = [port.to_dict() for port in self.ports.values()]
        if self.metadata:
            data["metadata"] = dict(self.metadata)
        return data

    def _load_base(self, data: dict[str, Any]) -> None:
        for port_data in data.get("ports", []):
            port = Port.from_dict(port_data, node_id=self.id)
            self.ports[port.id] = port
        self.metadata.update(data.get("metadata", {}))

    def _clone_base_into(self, clone: "_NodeBase") -> None:
        # inlined Port.clone: node cloning is the hot path of NFFG.copy
        # and pays one function call per port otherwise
        ports: dict[str, Port] = {}
        new = Port.__new__
        for port_id, port in self.ports.items():
            cloned = new(Port)
            data = cloned.__dict__
            data.update(port.__dict__)
            data["capabilities"] = _clone_payload(port.capabilities)
            data["flowrules"] = (list(port.flowrules)
                                 if port.flowrules else [])
            ports[port_id] = cloned
        clone.ports = ports
        clone.metadata = _clone_payload(self.metadata)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.id}>"


class NodeNF(_NodeBase):
    """A network function with a resource demand.

    ``functional_type`` identifies *what* the NF does (e.g. "firewall");
    ``deployment_type`` identifies *how* it runs (e.g. "click", "docker",
    "vm") — domains advertise which deployment types they support.
    """

    type = NodeType.NF

    def __init__(self, id: str, functional_type: str, name: str = "",
                 deployment_type: str = "", resources: ResourceVector | None = None):
        super().__init__(id, name)
        self.functional_type = functional_type
        self.deployment_type = deployment_type
        self.resources = resources or ResourceVector(cpu=1.0, mem=128.0, storage=1.0)
        #: status managed by the orchestration layers
        self.status: str = "initialized"

    def clone(self) -> "NodeNF":
        node = NodeNF.__new__(NodeNF)
        node.__dict__.update(self.__dict__)  # resources stay shared
        self._clone_base_into(node)
        return node

    def to_dict(self) -> dict[str, Any]:
        data = self._base_dict()
        data["functional_type"] = self.functional_type
        if self.deployment_type:
            data["deployment_type"] = self.deployment_type
        data["resources"] = self.resources.to_dict()
        data["status"] = self.status
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NodeNF":
        node = cls(id=str(data["id"]), functional_type=data["functional_type"],
                   name=data.get("name", ""),
                   deployment_type=data.get("deployment_type", ""),
                   resources=ResourceVector.from_dict(data.get("resources", {})))
        node.status = data.get("status", "initialized")
        node._load_base(data)
        return node


class NodeSAP(_NodeBase):
    """Service access point: where user traffic enters/leaves the chain."""

    type = NodeType.SAP

    def __init__(self, id: str, name: str = "", binding: Optional[str] = None):
        super().__init__(id, name)
        #: optional binding to a physical port ("domain:node:port")
        self.binding = binding

    def clone(self) -> "NodeSAP":
        node = NodeSAP.__new__(NodeSAP)
        node.__dict__.update(self.__dict__)
        self._clone_base_into(node)
        return node

    def to_dict(self) -> dict[str, Any]:
        data = self._base_dict()
        if self.binding:
            data["binding"] = self.binding
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NodeSAP":
        node = cls(id=str(data["id"]), name=data.get("name", ""),
                   binding=data.get("binding"))
        node._load_base(data)
        return node


class NodeInfra(_NodeBase):
    """Infrastructure node — a BiS-BiS in the general case.

    Carries a capacity :class:`ResourceVector`, the set of NF
    ``supported_types`` it can execute, its technology ``domain`` and the
    internal forwarding ``delay`` / ``bandwidth`` of the big switch.
    """

    type = NodeType.INFRA

    def __init__(self, id: str, name: str = "",
                 infra_type: InfraType = InfraType.BISBIS,
                 domain: DomainType = DomainType.INTERNAL,
                 resources: ResourceVector | None = None,
                 supported_types: Iterable[str] = (),
                 cost_per_cpu: float = 1.0):
        super().__init__(id, name)
        self.infra_type = infra_type
        self.domain = domain
        self.resources = resources or ResourceVector()
        self.supported_types: set[str] = set(supported_types)
        #: relative monetary/energy cost used by cost-aware embedders
        self.cost_per_cpu = cost_per_cpu

    def clone(self) -> "NodeInfra":
        node = NodeInfra.__new__(NodeInfra)
        node.__dict__.update(self.__dict__)  # resources stay shared
        node.supported_types = set(self.supported_types)
        self._clone_base_into(node)
        return node

    @property
    def is_bisbis(self) -> bool:
        return self.infra_type == InfraType.BISBIS

    def supports(self, functional_type: str) -> bool:
        if self.infra_type == InfraType.SDN_SWITCH:
            return False
        return (not self.supported_types) or functional_type in self.supported_types

    def to_dict(self) -> dict[str, Any]:
        data = self._base_dict()
        data["infra_type"] = self.infra_type.value
        data["domain"] = self.domain.value
        data["resources"] = self.resources.to_dict()
        if self.supported_types:
            data["supported_types"] = sorted(self.supported_types)
        if self.cost_per_cpu != 1.0:
            data["cost_per_cpu"] = self.cost_per_cpu
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "NodeInfra":
        node = cls(id=str(data["id"]), name=data.get("name", ""),
                   infra_type=InfraType(data.get("infra_type", "BiSBiS")),
                   domain=DomainType(data.get("domain", "INTERNAL")),
                   resources=ResourceVector.from_dict(data.get("resources", {})),
                   supported_types=data.get("supported_types", ()),
                   cost_per_cpu=float(data.get("cost_per_cpu", 1.0)))
        node._load_base(data)
        return node


@dataclass
class EdgeLink:
    """Static (substrate) or dynamic (NF binding) link between two ports."""

    id: str
    src_node: str
    src_port: str
    dst_node: str
    dst_port: str
    link_type: LinkType = LinkType.STATIC
    delay: float = 0.0
    bandwidth: float = 0.0
    #: bandwidth currently reserved by mapped SG hops
    reserved: float = 0.0

    @property
    def available_bandwidth(self) -> float:
        return self.bandwidth - self.reserved

    def clone(self) -> "EdgeLink":
        clone = EdgeLink.__new__(EdgeLink)
        clone.__dict__.update(self.__dict__)
        return clone

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id, "type": self.link_type.value,
            "src_node": self.src_node, "src_port": self.src_port,
            "dst_node": self.dst_node, "dst_port": self.dst_port,
            "delay": self.delay, "bandwidth": self.bandwidth,
            "reserved": self.reserved,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EdgeLink":
        return cls(id=str(data["id"]),
                   src_node=str(data["src_node"]), src_port=str(data["src_port"]),
                   dst_node=str(data["dst_node"]), dst_port=str(data["dst_port"]),
                   link_type=LinkType(data.get("type", "STATIC")),
                   delay=float(data.get("delay", 0.0)),
                   bandwidth=float(data.get("bandwidth", 0.0)),
                   reserved=float(data.get("reserved", 0.0)))


@dataclass
class EdgeSGHop:
    """A hop of the requested service chain (NF/SAP graph level).

    ``flowclass`` restricts which traffic takes the hop (e.g.
    ``dl_type=0x0800,tp_dst=80``); empty means all traffic from the
    source port.
    """

    id: str
    src_node: str
    src_port: str
    dst_node: str
    dst_port: str
    flowclass: str = ""
    bandwidth: float = 0.0
    delay: float = 0.0

    def clone(self) -> "EdgeSGHop":
        clone = EdgeSGHop.__new__(EdgeSGHop)
        clone.__dict__.update(self.__dict__)
        return clone

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id, "type": LinkType.SG.value,
            "src_node": self.src_node, "src_port": self.src_port,
            "dst_node": self.dst_node, "dst_port": self.dst_port,
            "flowclass": self.flowclass,
            "bandwidth": self.bandwidth, "delay": self.delay,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EdgeSGHop":
        return cls(id=str(data["id"]),
                   src_node=str(data["src_node"]), src_port=str(data["src_port"]),
                   dst_node=str(data["dst_node"]), dst_port=str(data["dst_port"]),
                   flowclass=data.get("flowclass", ""),
                   bandwidth=float(data.get("bandwidth", 0.0)),
                   delay=float(data.get("delay", 0.0)))


@dataclass
class EdgeReq:
    """End-to-end requirement over a sequence of SG hops.

    The paper's service layer lets users attach bandwidth/delay
    constraints "between arbitrary elements in the service graph"; this
    edge carries such a constraint along an ordered hop list.
    """

    id: str
    src_node: str
    src_port: str
    dst_node: str
    dst_port: str
    sg_path: list[str] = field(default_factory=list)
    bandwidth: float = 0.0
    max_delay: float = float("inf")

    def clone(self) -> "EdgeReq":
        clone = EdgeReq.__new__(EdgeReq)
        clone.__dict__.update(self.__dict__)
        clone.sg_path = list(self.sg_path)
        return clone

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id, "type": LinkType.REQUIREMENT.value,
            "src_node": self.src_node, "src_port": self.src_port,
            "dst_node": self.dst_node, "dst_port": self.dst_port,
            "sg_path": list(self.sg_path),
            "bandwidth": self.bandwidth,
            "max_delay": self.max_delay if self.max_delay != float("inf") else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EdgeReq":
        max_delay = data.get("max_delay")
        return cls(id=str(data["id"]),
                   src_node=str(data["src_node"]), src_port=str(data["src_port"]),
                   dst_node=str(data["dst_node"]), dst_port=str(data["dst_port"]),
                   sg_path=[str(hop) for hop in data.get("sg_path", [])],
                   bandwidth=float(data.get("bandwidth", 0.0)),
                   max_delay=float("inf") if max_delay is None else float(max_delay))
