"""NETCONF message envelopes (JSON-framed for wire accounting)."""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Optional

_MSG_ID = itertools.count(1)


@dataclass
class Hello:
    """Capability advertisement (both directions at session start)."""

    session_id: int = 0
    capabilities: list[str] = field(default_factory=list)

    def to_wire(self) -> str:
        return json.dumps({"hello": {"session_id": self.session_id,
                                     "capabilities": self.capabilities}})


@dataclass
class RpcRequest:
    """An <rpc> envelope: operation name + params dict."""

    op: str
    params: dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_MSG_ID))

    def to_wire(self) -> str:
        return json.dumps({"rpc": {"message_id": self.message_id,
                                   "op": self.op, "params": self.params}},
                          sort_keys=True, default=str)


@dataclass
class RpcError:
    tag: str
    message: str
    severity: str = "error"

    def to_dict(self) -> dict[str, str]:
        return {"tag": self.tag, "message": self.message,
                "severity": self.severity}


@dataclass
class RpcReply:
    message_id: int
    ok: bool = True
    data: Any = None
    error: Optional[RpcError] = None

    def to_wire(self) -> str:
        body: dict[str, Any] = {"message_id": self.message_id, "ok": self.ok}
        if self.data is not None:
            body["data"] = self.data
        if self.error is not None:
            body["error"] = self.error.to_dict()
        return json.dumps({"rpc-reply": body}, sort_keys=True, default=str)


@dataclass
class Notification:
    """Server-push event (e.g. VNF state change)."""

    event: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_wire(self) -> str:
        return json.dumps({"notification": {"event": self.event,
                                            "data": self.data}},
                          sort_keys=True, default=str)


#: advertised by servers whose edit-config accepts ``operation="patch"``
#: (digest-guarded yang.diff edit scripts against the running config);
#: clients only attempt delta pushes after seeing it in the hello
DELTA_CAPABILITY = "urn:unify:edit-config:delta:1.0"

BASE_CAPABILITIES = [
    "urn:ietf:params:netconf:base:1.1",
    "urn:ietf:params:netconf:capability:candidate:1.0",
    "urn:ietf:params:netconf:capability:validate:1.1",
    "urn:ietf:params:netconf:capability:notification:1.0",
    DELTA_CAPABILITY,
]

UNIFY_CAPABILITY = "urn:unify:virtualizer:1.0"
