"""NETCONF client: synchronous RPC calls over a control channel."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.netconf.messages import Hello, Notification, RpcReply, RpcRequest
from repro.openflow.channel import ControlChannel


class NetconfError(RuntimeError):
    """Raised when the server returns an rpc-error."""

    def __init__(self, tag: str, message: str):
        super().__init__(f"[{tag}] {message}")
        self.tag = tag


class NetconfClient:
    """Client side of one NETCONF session.

    Channels in this reproduction deliver synchronously (or via the
    simulator, in which case callers run the simulator between request
    and reply); replies are correlated by message id.
    """

    def __init__(self, name: str, channel: ControlChannel):
        self.name = name
        self.channel = channel
        channel.bind_a(self._on_message)
        self.server_capabilities: list[str] = []
        self.session_id: Optional[int] = None
        self.notifications: list[Notification] = []
        self.on_notification: Optional[Callable[[Notification], None]] = None
        #: fault-injection hook (see repro.resilience.faults): called
        #: with the operation name before each RPC; may raise to
        #: simulate a lost/failed exchange
        self.fault_hook: Optional[Callable[[str], None]] = None
        self._replies: dict[int, RpcReply] = {}

    # -- session ------------------------------------------------------------

    def hello(self, capabilities: Optional[list[str]] = None) -> list[str]:
        self.channel.send_to_b(Hello(capabilities=capabilities or []))
        if self.session_id is None:
            raise NetconfError("timeout", "no hello reply")
        return self.server_capabilities

    def has_capability(self, capability: str) -> bool:
        return capability in self.server_capabilities

    def close(self) -> None:
        self.rpc("close-session")

    # -- rpc plumbing -----------------------------------------------------------

    def _on_message(self, message: Any) -> None:
        if isinstance(message, Hello):
            self.session_id = message.session_id
            self.server_capabilities = list(message.capabilities)
        elif isinstance(message, RpcReply):
            self._replies[message.message_id] = message
        elif isinstance(message, Notification):
            self.notifications.append(message)
            if self.on_notification is not None:
                self.on_notification(message)

    def rpc(self, op: str, **params: Any) -> Any:
        if self.fault_hook is not None:
            self.fault_hook(op)
        request = RpcRequest(op=op, params=params)
        self.channel.send_to_b(request)
        reply = self._replies.pop(request.message_id, None)
        if reply is None:
            raise NetconfError("timeout", f"no reply for {op!r}")
        if not reply.ok:
            error = reply.error
            raise NetconfError(error.tag if error else "unknown",
                               error.message if error else "rpc failed")
        return reply.data

    # -- standard operations --------------------------------------------------------

    def get_config(self, source: str = "running") -> Any:
        return self.rpc("get-config", source=source)

    def get(self) -> Any:
        return self.rpc("get")

    def edit_config(self, config: Any, *, target: str = "candidate",
                    operation: str = "merge") -> Any:
        return self.rpc("edit-config", target=target, operation=operation,
                        config=config)

    def edit_config_delta(self, base_digest: str, entries: list[dict[str, Any]],
                          *, target: str = "candidate") -> Any:
        """Ship a yang.diff edit script instead of a full config.

        The server verifies ``base_digest`` against its running config
        and answers with the non-retryable ``delta-mismatch`` tag when
        the bases have drifted — callers fall back to a full
        ``edit_config(..., operation="replace")`` on that error.
        """
        return self.rpc("edit-config", target=target, operation="patch",
                        config={"base_digest": base_digest,
                                "entries": entries})

    def validate(self, source: str = "candidate") -> Any:
        return self.rpc("validate", source=source)

    def commit(self) -> Any:
        return self.rpc("commit")

    def discard_changes(self) -> Any:
        return self.rpc("discard-changes")

    def lock(self) -> Any:
        return self.rpc("lock")

    def unlock(self) -> Any:
        return self.rpc("unlock")

    def __repr__(self) -> str:
        return f"<NetconfClient {self.name} session={self.session_id}>"
