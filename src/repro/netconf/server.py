"""NETCONF server: datastores + RPC dispatch.

The server owns a *running* and a *candidate* datastore (arbitrary
JSON-compatible configs — in practice virtualizer dicts or diff entry
lists).  Domain orchestrators subclass or register apply-callbacks: a
successful ``commit`` hands the new running config to the callback,
which reconfigures the domain.
"""

from __future__ import annotations

import copy
import itertools
from typing import Any, Callable, Optional

from repro.netconf.messages import (
    BASE_CAPABILITIES,
    Hello,
    Notification,
    RpcError,
    RpcReply,
    RpcRequest,
)
from repro.openflow.channel import ControlChannel
from repro.yang.config import config_digest, config_to_tree, tree_to_config
from repro.yang.data import ValidationError
from repro.yang.diff import DiffEntry, apply_patch

_SESSION_ID = itertools.count(1)

ApplyCallback = Callable[[Any], None]
RpcHandler = Callable[[dict], Any]


class Datastore:
    """One named configuration datastore."""

    def __init__(self, name: str, config: Any = None):
        self.name = name
        self.config = config

    def snapshot(self) -> Any:
        return copy.deepcopy(self.config)


class NetconfServer:
    """Server side of one NETCONF session."""

    def __init__(self, name: str, *, capabilities: Optional[list[str]] = None,
                 initial_config: Any = None):
        self.name = name
        self.capabilities = list(capabilities or []) + BASE_CAPABILITIES
        self.running = Datastore("running", initial_config)
        self.candidate = Datastore("candidate",
                                   copy.deepcopy(initial_config))
        self.session_id = 0
        self.channel: Optional[ControlChannel] = None
        self._apply_callbacks: list[ApplyCallback] = []
        self._custom_rpcs: dict[str, RpcHandler] = {}
        self._locked_by: Optional[int] = None
        self.rpcs_handled = 0

    # -- wiring -------------------------------------------------------------

    def bind(self, channel: ControlChannel) -> None:
        """Attach as endpoint "b" (the managed device side)."""
        self.channel = channel
        channel.bind_b(self._on_message)

    def on_apply(self, callback: ApplyCallback) -> None:
        """Called with the new running config after each commit or
        successful edit of the running store."""
        self._apply_callbacks.append(callback)

    def register_rpc(self, op: str, handler: RpcHandler) -> None:
        """Add a device-specific RPC (e.g. ``start-vnf``)."""
        self._custom_rpcs[op] = handler

    def notify(self, event: str, data: dict[str, Any]) -> None:
        if self.channel is not None:
            self.channel.send_to_a(Notification(event=event, data=data))

    # -- dispatch ---------------------------------------------------------------

    def _on_message(self, message: Any) -> None:
        if isinstance(message, Hello):
            self.session_id = next(_SESSION_ID)
            assert self.channel is not None
            self.channel.send_to_a(Hello(session_id=self.session_id,
                                         capabilities=self.capabilities))
            return
        if not isinstance(message, RpcRequest):
            return
        self.rpcs_handled += 1
        try:
            data = self._dispatch(message)
            reply = RpcReply(message_id=message.message_id, ok=True, data=data)
        except NetconfServerError as exc:
            reply = RpcReply(message_id=message.message_id, ok=False,
                             error=RpcError(tag=exc.tag, message=str(exc)))
        except Exception as exc:  # noqa: BLE001 - fault isolation at RPC boundary
            reply = RpcReply(message_id=message.message_id, ok=False,
                             error=RpcError(tag="operation-failed",
                                            message=f"{type(exc).__name__}: {exc}"))
        assert self.channel is not None
        self.channel.send_to_a(reply)

    def _dispatch(self, request: RpcRequest) -> Any:
        op = request.op
        params = request.params
        if op == "get-config":
            return self._store(params.get("source", "running")).snapshot()
        if op == "get":
            return {"config": self.running.snapshot(),
                    "state": self.state_data()}
        if op == "edit-config":
            return self._edit_config(params)
        if op == "commit":
            return self._commit()
        if op == "discard-changes":
            self.candidate.config = self.running.snapshot()
            return {"ok": True}
        if op == "validate":
            problems = self.validate_config(
                self._store(params.get("source", "candidate")).snapshot())
            if problems:
                raise NetconfServerError("invalid-value", "; ".join(problems))
            return {"ok": True}
        if op == "lock":
            if self._locked_by is not None:
                raise NetconfServerError("lock-denied", "datastore locked")
            self._locked_by = self.session_id
            return {"ok": True}
        if op == "unlock":
            self._locked_by = None
            return {"ok": True}
        if op == "close-session":
            self._locked_by = None
            return {"ok": True}
        if op in self._custom_rpcs:
            return self._custom_rpcs[op](params)
        raise NetconfServerError("operation-not-supported",
                                 f"unknown rpc {op!r}")

    # -- datastore operations ------------------------------------------------------

    def _store(self, name: str) -> Datastore:
        if name == "running":
            return self.running
        if name == "candidate":
            return self.candidate
        raise NetconfServerError("invalid-value", f"unknown datastore {name!r}")

    def _edit_config(self, params: dict) -> Any:
        target = self._store(params.get("target", "candidate"))
        operation = params.get("operation", "merge")
        config = params.get("config")
        if operation == "replace":
            target.config = copy.deepcopy(config)
        elif operation == "merge":
            target.config = _merge(target.snapshot(), config)
        elif operation == "delete":
            target.config = None
        elif operation == "patch":
            target.config = self._patched_config(config)
        else:
            raise NetconfServerError("bad-attribute",
                                     f"unknown operation {operation!r}")
        if target is self.running:
            self._apply(self.running.snapshot())
        return {"ok": True}

    def _patched_config(self, patch: Any) -> Any:
        """Apply a delta edit script on top of the *running* config.

        The patch carries the digest of the base the client diffed
        against; if it no longer matches our running config (restart,
        missed commit, another writer) we refuse with the non-retryable
        ``delta-mismatch`` tag so the client falls back to a full push
        instead of installing a patch against the wrong base.
        """
        if not isinstance(patch, dict) or "entries" not in patch:
            raise NetconfServerError("bad-element",
                                     "patch config needs 'entries'")
        base = self.running.snapshot()
        if base is None:
            raise NetconfServerError("delta-mismatch",
                                     "no running config to patch")
        digest = config_digest(base)
        if digest != patch.get("base_digest"):
            raise NetconfServerError(
                "delta-mismatch",
                f"patch base {patch.get('base_digest')!r} != running {digest!r}")
        tree = config_to_tree(base)
        entries = [DiffEntry.from_dict(entry) for entry in patch["entries"]]
        try:
            apply_patch(tree, entries)
        except ValidationError as exc:
            raise NetconfServerError("delta-mismatch",
                                     f"patch does not apply: {exc}") from exc
        return tree_to_config(tree)

    def _commit(self) -> Any:
        problems = self.validate_config(self.candidate.snapshot())
        if problems:
            raise NetconfServerError("invalid-value",
                                     "validation failed: " + "; ".join(problems))
        self.running.config = self.candidate.snapshot()
        self._apply(self.running.snapshot())
        return {"ok": True}

    def _apply(self, config: Any) -> None:
        for callback in self._apply_callbacks:
            callback(config)

    # -- extension points -----------------------------------------------------------

    def validate_config(self, config: Any) -> list[str]:
        """Override for model-aware validation; [] means valid."""
        return []

    def state_data(self) -> dict[str, Any]:
        """Override to expose operational state in <get>."""
        return {}


class NetconfServerError(RuntimeError):
    def __init__(self, tag: str, message: str):
        super().__init__(message)
        self.tag = tag


def _merge(base: Any, overlay: Any) -> Any:
    if isinstance(base, dict) and isinstance(overlay, dict):
        merged = dict(base)
        for key, value in overlay.items():
            if key in merged:
                merged[key] = _merge(merged[key], value)
            else:
                merged[key] = copy.deepcopy(value)
        return merged
    return copy.deepcopy(overlay)
