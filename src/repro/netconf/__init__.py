"""NETCONF-like management protocol.

The prototype drives its Mininet domain "via NETCONF and OpenFlow
control channels" and the Unify interface itself follows NETCONF
discipline (get-config / edit-config / commit on YANG data).  This
package implements that discipline over the byte-counted in-memory
channels: capability exchange, running+candidate datastores, merge /
replace / delete edit operations, validate, commit/discard and
notifications.
"""

from repro.netconf.messages import (
    Hello,
    Notification,
    RpcError,
    RpcReply,
    RpcRequest,
)
from repro.netconf.server import Datastore, NetconfServer
from repro.netconf.client import NetconfClient, NetconfError

__all__ = [
    "Hello",
    "Notification",
    "RpcError",
    "RpcReply",
    "RpcRequest",
    "Datastore",
    "NetconfServer",
    "NetconfClient",
    "NetconfError",
]
