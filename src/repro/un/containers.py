"""Docker-like container runtime for Universal Node NFs."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.click.catalog import NF_CATALOG, make_nf_process
from repro.click.process import ClickProcess
from repro.sim.kernel import Simulator


class ContainerState(str, enum.Enum):
    CREATED = "created"
    RUNNING = "running"
    STOPPED = "stopped"


@dataclass
class Container:
    id: str
    name: str
    image: str                    #: NF functional type (image tag)
    cpu_limit: float
    mem_limit_mb: float
    state: ContainerState = ContainerState.CREATED
    process: Optional[ClickProcess] = None
    started_at: float = 0.0
    _on_running: list[Callable[["Container"], None]] = field(
        default_factory=list, repr=False)

    def on_running(self, callback: Callable[["Container"], None]) -> None:
        if self.state == ContainerState.RUNNING:
            callback(self)
        else:
            self._on_running.append(callback)


class ContainerRuntime:
    """Container lifecycle with start latency on the virtual clock.

    Containers start an order of magnitude faster than cloud VMs —
    the UN's selling point for high-churn NFs.
    """

    def __init__(self, simulator: Simulator, *, node_name: str = "un",
                 cpu_capacity: float = 16.0, mem_capacity_mb: float = 16384.0,
                 start_delay_ms: float = 300.0):
        self.simulator = simulator
        self.node_name = node_name
        self.cpu_capacity = cpu_capacity
        self.mem_capacity_mb = mem_capacity_mb
        self.start_delay_ms = start_delay_ms
        self.containers: dict[str, Container] = {}
        self._id_seq = itertools.count(1)
        self.starts = 0

    # -- capacity -----------------------------------------------------------

    @property
    def cpu_used(self) -> float:
        return sum(c.cpu_limit for c in self.containers.values()
                   if c.state != ContainerState.STOPPED)

    @property
    def mem_used(self) -> float:
        return sum(c.mem_limit_mb for c in self.containers.values()
                   if c.state != ContainerState.STOPPED)

    def can_run(self, cpu: float, mem_mb: float) -> bool:
        return (self.cpu_used + cpu <= self.cpu_capacity + 1e-9
                and self.mem_used + mem_mb <= self.mem_capacity_mb + 1e-9)

    # -- lifecycle -------------------------------------------------------------

    def run(self, name: str, image: str, *, cpu: float = 1.0,
            mem_mb: float = 128.0) -> Container:
        """`docker run`: create + start (async on the virtual clock)."""
        if image not in NF_CATALOG:
            raise KeyError(f"unknown image {image!r}")
        if not self.can_run(cpu, mem_mb):
            raise RuntimeError(
                f"{self.node_name}: out of capacity for container {name!r}")
        container = Container(id=f"ctr-{next(self._id_seq)}", name=name,
                              image=image, cpu_limit=cpu, mem_limit_mb=mem_mb)
        self.containers[container.id] = container
        self.starts += 1
        self.simulator.schedule(self.start_delay_ms, self._start, container.id)
        return container

    def _start(self, container_id: str) -> None:
        container = self.containers.get(container_id)
        if container is None or container.state != ContainerState.CREATED:
            return
        container.process = make_nf_process(container.name, container.image)
        container.state = ContainerState.RUNNING
        container.started_at = self.simulator.now
        callbacks, container._on_running = container._on_running, []
        for callback in callbacks:
            callback(container)

    def stop(self, container_id: str) -> None:
        container = self.containers.get(container_id)
        if container is None or container.state == ContainerState.STOPPED:
            return
        if container.process is not None:
            container.process.stop()
        container.state = ContainerState.STOPPED

    def by_name(self, name: str) -> Optional[Container]:
        for container in self.containers.values():
            if container.name == name and container.state != ContainerState.STOPPED:
                return container
        return None

    def running(self) -> list[Container]:
        return [c for c in self.containers.values()
                if c.state == ContainerState.RUNNING]
