"""The Universal Node domain and its local orchestrator."""

from __future__ import annotations

from typing import Any

from repro.click.catalog import supported_functional_types
from repro.infra.flowprog import program_infra_flows
from repro.infra.nfswitch import NFHostingSwitch
from repro.netconf.messages import UNIFY_CAPABILITY
from repro.netconf.server import NetconfServer
from repro.netem.network import Network
from repro.netem.node import Host
from repro.nffg.graph import NFFG
from repro.nffg.model import DomainType, InfraType, ResourceVector
from repro.nffg.serialize import nffg_from_dict
from repro.openflow.controller import ControllerEndpoint
from repro.un.containers import Container, ContainerRuntime


class LogicalSwitchInstance(NFHostingSwitch):
    """The UN's DPDK-accelerated software switch.

    Same contract as any NF-hosting switch, but with a forwarding
    latency an order of magnitude below the software switches of the
    emulated domain — the "high performance forwarding" of the paper.
    """

    def __init__(self, dpid: str, simulator, forwarding_delay_ms: float = 0.001):
        super().__init__(dpid, simulator,
                         forwarding_delay_ms=forwarding_delay_ms)


class UniversalNodeDomain:
    """One Universal Node: a single LSI + a container runtime."""

    domain_type = DomainType.UN

    def __init__(self, name: str, network: Network, *,
                 cpu: float = 16.0, mem_mb: float = 16384.0,
                 storage_gb: float = 256.0,
                 port_bandwidth: float = 40_000.0,
                 container_start_delay_ms: float = 300.0):
        self.name = name
        self.network = network
        self.storage_gb = storage_gb
        self.port_bandwidth = port_bandwidth
        self.lsi = LogicalSwitchInstance(f"{name}-lsi", network.simulator)
        network.add(self.lsi)
        self.runtime = ContainerRuntime(
            network.simulator, node_name=name, cpu_capacity=cpu,
            mem_capacity_mb=mem_mb,
            start_delay_ms=container_start_delay_ms)
        self.sap_hosts: dict[str, Host] = {}
        self._handoff_ports: dict[str, tuple[str, str]] = {}

    # -- edge attachment ----------------------------------------------------

    def add_sap(self, sap_id: str) -> Host:
        host = self.network.add_host(f"{self.name}-host-{sap_id}")
        port = f"sap-{sap_id}"
        self.network.connect(host.id, "0", self.lsi.id, port,
                             bandwidth_mbps=self.port_bandwidth, delay_ms=0.05)
        self.sap_hosts[sap_id] = host
        self._handoff_ports[sap_id] = (self.lsi.id, port)
        return host

    def add_handoff(self, tag: str) -> tuple[str, str]:
        port = f"sap-{tag}"
        self._handoff_ports[tag] = (self.lsi.id, port)
        return self.lsi.id, port

    def handoff(self, tag: str) -> tuple[str, str]:
        return self._handoff_ports[tag]

    # -- northbound description -----------------------------------------------

    @property
    def bisbis_id(self) -> str:
        return f"{self.name}-bisbis"

    def domain_view(self) -> NFFG:
        view = NFFG(id=f"{self.name}-view",
                    name=f"universal node {self.name}")
        # installed inventory, not live-free: the parent's adaptation
        # layer tracks its own deployments (see CloudDomain.domain_view)
        infra = view.add_infra(
            self.bisbis_id, infra_type=InfraType.BISBIS,
            domain=self.domain_type,
            resources=ResourceVector(
                cpu=self.runtime.cpu_capacity,
                mem=self.runtime.mem_capacity_mb,
                storage=self.storage_gb,
                bandwidth=self.port_bandwidth, delay=0.002),
            supported_types=supported_functional_types(),
            cost_per_cpu=0.5)
        for tag in self._handoff_ports:
            infra.add_port(f"sap-{tag}", sap_tag=tag)
        for sap_id in self.sap_hosts:
            sap = view.add_sap(sap_id)
            view.add_link(sap_id, list(sap.ports)[0], infra.id,
                          f"sap-{sap_id}", id=f"sl-{self.name}-{sap_id}",
                          bandwidth=self.port_bandwidth, delay=0.05)
        return view


class UNLocalOrchestrator(NetconfServer):
    """UN local orchestrator: containers + LSI flow control."""

    def __init__(self, domain: UniversalNodeDomain):
        super().__init__(f"{domain.name}-lo", capabilities=[UNIFY_CAPABILITY])
        self.domain = domain
        self.controller = ControllerEndpoint(
            f"{domain.name}-ctl", simulator=domain.network.simulator)
        self.controller.connect_switch(domain.lsi)
        self._nf_containers: dict[str, Container] = {}
        self.deploy_count = 0
        self.on_apply(self._apply_config)
        self.register_rpc("list-containers", lambda params: [
            {"id": c.id, "name": c.name, "image": c.image,
             "state": c.state.value} for c in self.domain.runtime.running()])

    # -- NETCONF hooks ------------------------------------------------------------

    def validate_config(self, config: Any) -> list[str]:
        if config is None:
            return []
        try:
            install = nffg_from_dict(config["nffg"])
        except Exception as exc:  # noqa: BLE001
            return [f"config is not a valid NFFG: {exc}"]
        problems = []
        for infra in install.infras:
            if infra.id != self.domain.bisbis_id:
                problems.append(f"unknown BiS-BiS {infra.id!r}")
        demand_cpu = sum(nf.resources.cpu for nf in install.nfs)
        if demand_cpu > self.domain.runtime.cpu_capacity:
            problems.append(
                f"cpu demand {demand_cpu} exceeds UN capacity "
                f"{self.domain.runtime.cpu_capacity}")
        return problems

    def state_data(self) -> dict[str, Any]:
        return {
            "containers": {nf_id: c.state.value
                           for nf_id, c in self._nf_containers.items()},
            "flow_mods_sent": self.controller.flow_mods_sent,
            "deploys": self.deploy_count,
        }

    # -- reconciliation -----------------------------------------------------------------

    def _apply_config(self, config: Any) -> None:
        if config is None:
            self._teardown_all()
            return
        install = nffg_from_dict(config["nffg"])
        self.deploy_count += 1
        self._reconcile_containers(install)
        self._reprogram_lsi(install)
        self.notify("deploy-finished", {"nffg": install.id})

    def _reconcile_containers(self, install: NFFG) -> None:
        wanted = {nf.id: nf for nf in install.nfs
                  if install.host_of(nf.id) == self.domain.bisbis_id}
        for nf_id in list(self._nf_containers):
            container = self._nf_containers[nf_id]
            nf = wanted.get(nf_id)
            if nf is None or nf.functional_type != container.image:
                del self._nf_containers[nf_id]
                self.domain.lsi.detach_nf(nf_id)
                self.domain.runtime.stop(container.id)
                self.notify("vnf-stopped", {"id": nf_id})
        for nf_id, nf in wanted.items():
            if nf_id in self._nf_containers:
                continue
            container = self.domain.runtime.run(
                nf_id, nf.functional_type, cpu=nf.resources.cpu,
                mem_mb=nf.resources.mem)
            self._nf_containers[nf_id] = container
            nf_ports = sorted(int(p) for p in nf.ports) or [1, 2]
            container.on_running(
                lambda ctr, nf_id=nf_id, ports=nf_ports:
                self._attach_container(nf_id, ctr, ports))

    def _attach_container(self, nf_id: str, container: Container,
                          nf_ports: list[int]) -> None:
        assert container.process is not None
        self.domain.lsi.attach_nf(nf_id, container.process, nf_ports=nf_ports)
        self.notify("vnf-started", {"id": nf_id, "container": container.id})

    def _reprogram_lsi(self, install: NFFG) -> None:
        dpid = self.domain.lsi.dpid
        self.controller.delete_flows(dpid)
        if install.has_node(self.domain.bisbis_id):
            infra = install.infra(self.domain.bisbis_id)
            program_infra_flows(self.controller, dpid, infra)
        self.controller.barrier(dpid)

    def _teardown_all(self) -> None:
        for nf_id, container in list(self._nf_containers.items()):
            self.domain.lsi.detach_nf(nf_id)
            self.domain.runtime.stop(container.id)
        self._nf_containers.clear()
        self.controller.delete_flows(self.domain.lsi.dpid)

    # -- helpers -----------------------------------------------------------------------

    def all_containers_running(self) -> bool:
        from repro.un.containers import ContainerState
        return all(c.state == ContainerState.RUNNING
                   for c in self._nf_containers.values())
