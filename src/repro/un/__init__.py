"""Universal Node (UN).

The paper's "novel infrastructure element ... a COTS hardware based
packet processor node with the capability of i) high performance
forwarding and ii) running high complexity NFs in its virtualized
environment".  The reproduction models:

- :class:`LogicalSwitchInstance` — the DPDK-accelerated software
  switch (an NF-hosting switch with very low forwarding latency);
- :class:`ContainerRuntime` — Docker-like container lifecycle for NFs
  (fast start compared to cloud VMs);
- :class:`UNLocalOrchestrator` — "UN local orchestrator is responsible
  for controlling logical switch instances ... and for managing NFs
  running as Docker containers".
"""

from repro.un.containers import Container, ContainerRuntime, ContainerState
from repro.un.domain import LogicalSwitchInstance, UNLocalOrchestrator, UniversalNodeDomain

__all__ = [
    "Container",
    "ContainerRuntime",
    "ContainerState",
    "LogicalSwitchInstance",
    "UNLocalOrchestrator",
    "UniversalNodeDomain",
]
