"""Network container: nodes + links on a shared simulator."""

from __future__ import annotations

from typing import Iterable, Optional, TypeVar

from repro.netem.link import Link
from repro.netem.node import Host, NetworkNode
from repro.sim.kernel import Simulator

N = TypeVar("N", bound=NetworkNode)


class Network:
    """A set of nodes wired by links over one discrete-event simulator."""

    def __init__(self, simulator: Optional[Simulator] = None):
        self.simulator = simulator or Simulator()
        self.nodes: dict[str, NetworkNode] = {}
        self.links: list[Link] = []

    def add(self, node: N) -> N:
        if node.id in self.nodes:
            raise ValueError(f"duplicate node id {node.id!r}")
        self.nodes[node.id] = node
        return node

    def add_host(self, node_id: str, ip: str = "", mac: str = "") -> Host:
        return self.add(Host(node_id, self.simulator, ip=ip, mac=mac))

    def node(self, node_id: str) -> NetworkNode:
        return self.nodes[node_id]

    def connect(self, node_a: str | NetworkNode, port_a: str,
                node_b: str | NetworkNode, port_b: str, *,
                bandwidth_mbps: float = 1000.0, delay_ms: float = 1.0,
                queue_packets: int = 256) -> Link:
        a = self.nodes[node_a] if isinstance(node_a, str) else node_a
        b = self.nodes[node_b] if isinstance(node_b, str) else node_b
        link = Link(self.simulator, node_a=a, port_a=str(port_a),
                    node_b=b, port_b=str(port_b),
                    bandwidth_mbps=bandwidth_mbps, delay_ms=delay_ms,
                    queue_packets=queue_packets)
        a.attach(str(port_a), link)
        b.attach(str(port_b), link)
        self.links.append(link)
        return link

    def run(self, until: Optional[float] = None) -> None:
        self.simulator.run(until=until)

    def link_between(self, node_a: str, node_b: str) -> Optional[Link]:
        for link in self.links:
            if {link.node_a.id, link.node_b.id} == {node_a, node_b}:
                return link
        return None

    def fail_link(self, node_a: str, node_b: str) -> Link:
        """Take a link down (traffic drops until restored)."""
        link = self.link_between(node_a, node_b)
        if link is None:
            raise ValueError(f"no link between {node_a!r} and {node_b!r}")
        link.up = False
        return link

    def restore_link(self, node_a: str, node_b: str) -> Link:
        link = self.link_between(node_a, node_b)
        if link is None:
            raise ValueError(f"no link between {node_a!r} and {node_b!r}")
        link.up = True
        return link

    def hosts(self) -> Iterable[Host]:
        return (node for node in self.nodes.values() if isinstance(node, Host))

    def total_delivered(self) -> int:
        return sum(len(host.received) for host in self.hosts())

    def __repr__(self) -> str:
        return f"<Network {len(self.nodes)} nodes, {len(self.links)} links>"
