"""Network nodes: the base forwarding element and a traffic host."""

from __future__ import annotations

from typing import Callable, Optional

from repro.netem.packet import Packet
from repro.sim.kernel import Simulator


class NetworkNode:
    """Base class: something with numbered ports attached to links.

    Subclasses override :meth:`receive`.  Transmission happens through
    the :class:`~repro.netem.link.Link` objects plugged into ports by
    :class:`~repro.netem.network.Network`.
    """

    def __init__(self, node_id: str, simulator: Simulator):
        self.id = node_id
        self.simulator = simulator
        #: port id -> Link (set by Network.connect)
        self.links: dict[str, "Link"] = {}
        self.rx_packets = 0
        self.tx_packets = 0
        self.drops = 0

    def attach(self, port_id: str, link: "Link") -> None:
        if port_id in self.links:
            raise ValueError(f"port {port_id!r} of {self.id!r} already wired")
        self.links[port_id] = link

    def receive(self, packet: Packet, in_port: str) -> None:
        """Handle an arriving packet; default: count and drop."""
        self.rx_packets += 1
        self.drops += 1

    def transmit(self, packet: Packet, out_port: str) -> None:
        """Send a packet out of a port (drops if unwired)."""
        link = self.links.get(out_port)
        if link is None:
            self.drops += 1
            return
        self.tx_packets += 1
        link.send(self, packet)

    def ports(self) -> list[str]:
        return list(self.links)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.id} ports={list(self.links)}>"


class Host(NetworkNode):
    """An end host: injects traffic, records what it receives."""

    def __init__(self, node_id: str, simulator: Simulator,
                 ip: str = "", mac: str = ""):
        super().__init__(node_id, simulator)
        self.ip = ip or f"10.0.0.{abs(hash(node_id)) % 250 + 1}"
        self.mac = mac or _mac_from(node_id)
        self.received: list[Packet] = []
        self.latencies: list[float] = []
        self.on_receive: Optional[Callable[[Packet], None]] = None

    def receive(self, packet: Packet, in_port: str) -> None:
        self.rx_packets += 1
        packet.record(self.id)
        self.received.append(packet)
        self.latencies.append(self.simulator.now - packet.created_at)
        if self.on_receive is not None:
            self.on_receive(packet)

    def send(self, packet: Packet, out_port: Optional[str] = None) -> None:
        """Inject a packet now (stamps creation time and source fields)."""
        packet.created_at = self.simulator.now
        if not packet.ip_src or packet.ip_src == "10.0.0.1":
            packet.ip_src = self.ip
        packet.eth_src = self.mac
        packet.record(self.id)
        port = out_port or (self.ports()[0] if self.ports() else None)
        if port is None:
            self.drops += 1
            return
        self.transmit(packet, port)

    def send_burst(self, packets: list[Packet], interval: float = 0.1,
                   out_port: Optional[str] = None) -> None:
        """Schedule a burst of packets ``interval`` ms apart."""
        for index, packet in enumerate(packets):
            self.simulator.schedule(index * interval, self.send, packet, out_port)

    def clear(self) -> None:
        self.received.clear()
        self.latencies.clear()


def _mac_from(node_id: str) -> str:
    digest = abs(hash(node_id))
    octets = [(digest >> (8 * i)) & 0xFF for i in range(5)]
    return "02:" + ":".join(f"{octet:02x}" for octet in octets)
