"""Packet-level network emulation.

A deliberately small but real dataplane: packets carry Ethernet/IP/TCP
headers, links impose serialization + propagation delay on the
discrete-event clock, nodes receive packets on ports.  The OpenFlow
switches (:mod:`repro.openflow`), Click NFs (:mod:`repro.click`) and
every technology domain forward *these* packets, so a deployed service
chain can be verified end-to-end by injecting traffic at a SAP and
watching it arrive — the reproduction's substitute for the live demo.
"""

from repro.netem.packet import EtherType, IPProto, Packet
from repro.netem.node import Host, NetworkNode
from repro.netem.link import Link
from repro.netem.network import Network

__all__ = [
    "EtherType",
    "IPProto",
    "Packet",
    "Host",
    "NetworkNode",
    "Link",
    "Network",
]
