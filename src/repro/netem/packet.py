"""The packet model: a flat header struct, not a byte parser.

Headers cover what SFC steering and the demo NFs need: Ethernet
addresses and type, one optional VLAN tag (used for inter-BiS-BiS
chain tagging), IPv4 addresses/protocol, transport ports and an opaque
payload.  ``trace`` accumulates the nodes the packet traversed so tests
can assert the exact path a chain steered it through.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Optional

_PACKET_SEQ = itertools.count(1)


class EtherType(int, enum.Enum):
    IPV4 = 0x0800
    ARP = 0x0806
    VLAN = 0x8100


class IPProto(int, enum.Enum):
    ICMP = 1
    TCP = 6
    UDP = 17


@dataclass
class Packet:
    """One simulated packet."""

    eth_src: str = "00:00:00:00:00:01"
    eth_dst: str = "00:00:00:00:00:02"
    eth_type: int = EtherType.IPV4
    vlan: Optional[int] = None
    ip_src: str = "10.0.0.1"
    ip_dst: str = "10.0.0.2"
    ip_proto: int = IPProto.TCP
    ip_ttl: int = 64
    tp_src: int = 10000
    tp_dst: int = 80
    payload: str = ""
    size_bytes: int = 1000
    #: unique id for tracing; preserved across copies/rewrites
    uid: int = field(default_factory=lambda: next(_PACKET_SEQ))
    #: virtual time the packet was first sent
    created_at: float = 0.0
    #: nodes traversed, appended by every forwarding element
    trace: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def copy(self) -> "Packet":
        clone = replace(self)
        clone.trace = list(self.trace)
        clone.metadata = dict(self.metadata)
        return clone

    def record(self, node_id: str) -> None:
        self.trace.append(node_id)

    def five_tuple(self) -> tuple[str, str, int, int, int]:
        return (self.ip_src, self.ip_dst, self.ip_proto,
                self.tp_src, self.tp_dst)

    def matches_flowclass(self, flowclass: str) -> bool:
        """Evaluate an NFFG flowclass spec (``k=v,k2=v2``) on headers."""
        if not flowclass:
            return True
        for token in flowclass.split(","):
            token = token.strip()
            if not token or "=" not in token:
                continue
            key, _, value = token.partition("=")
            key, value = key.strip(), value.strip()
            actual = _FLOWCLASS_FIELDS.get(key, lambda p: None)(self)
            if actual is None:
                return False
            if isinstance(actual, int):
                try:
                    wanted: Any = int(value, 0)
                except ValueError:
                    return False
            else:
                wanted = value
            if actual != wanted:
                return False
        return True

    def __repr__(self) -> str:
        vlan = f" vlan={self.vlan}" if self.vlan is not None else ""
        return (f"<Packet #{self.uid} {self.ip_src}:{self.tp_src} -> "
                f"{self.ip_dst}:{self.tp_dst} proto={self.ip_proto}{vlan}>")


_FLOWCLASS_FIELDS = {
    "dl_src": lambda p: p.eth_src,
    "dl_dst": lambda p: p.eth_dst,
    "dl_type": lambda p: int(p.eth_type),
    "dl_vlan": lambda p: p.vlan,
    "nw_src": lambda p: p.ip_src,
    "nw_dst": lambda p: p.ip_dst,
    "nw_proto": lambda p: int(p.ip_proto),
    "tp_src": lambda p: p.tp_src,
    "tp_dst": lambda p: p.tp_dst,
}


def tcp_packet(ip_src: str, ip_dst: str, *, tp_src: int = 10000,
               tp_dst: int = 80, payload: str = "", size: int = 1000) -> Packet:
    return Packet(ip_src=ip_src, ip_dst=ip_dst, ip_proto=IPProto.TCP,
                  tp_src=tp_src, tp_dst=tp_dst, payload=payload,
                  size_bytes=size)


def udp_packet(ip_src: str, ip_dst: str, *, tp_src: int = 10000,
               tp_dst: int = 53, payload: str = "", size: int = 512) -> Packet:
    return Packet(ip_src=ip_src, ip_dst=ip_dst, ip_proto=IPProto.UDP,
                  tp_src=tp_src, tp_dst=tp_dst, payload=payload,
                  size_bytes=size)
