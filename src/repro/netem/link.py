"""Point-to-point links with bandwidth, delay and a bounded queue.

Transmission time = serialization (size / bandwidth) + propagation
delay.  The link serializes packets: a packet must wait for the
previous one to finish serializing (single transmit queue per
direction), which yields realistic queueing latency under load and
gives the dataplane benchmark its throughput ceiling.
"""

from __future__ import annotations

from repro.netem.packet import Packet
from repro.sim.kernel import Simulator


class Link:
    """Bidirectional link between two (node, port) endpoints."""

    def __init__(self, simulator: Simulator, *,
                 node_a: "NetworkNode", port_a: str,
                 node_b: "NetworkNode", port_b: str,
                 bandwidth_mbps: float = 1000.0, delay_ms: float = 1.0,
                 queue_packets: int = 256):
        self.simulator = simulator
        self.node_a, self.port_a = node_a, port_a
        self.node_b, self.port_b = node_b, port_b
        self.bandwidth_mbps = bandwidth_mbps
        self.delay_ms = delay_ms
        self.queue_packets = queue_packets
        #: per-direction state, keyed by sender node id
        self._busy_until = {node_a.id: 0.0, node_b.id: 0.0}
        self._queued = {node_a.id: 0, node_b.id: 0}
        self.tx_packets = 0
        self.tx_bytes = 0
        self.dropped = 0
        #: administrative/operational state; a down link drops traffic
        self.up = True

    def peer_of(self, sender: "NetworkNode") -> tuple["NetworkNode", str]:
        if sender is self.node_a:
            return self.node_b, self.port_b
        if sender is self.node_b:
            return self.node_a, self.port_a
        raise ValueError(f"{sender!r} is not an endpoint of this link")

    def send(self, sender: "NetworkNode", packet: Packet) -> None:
        """Queue a packet for transmission from ``sender``'s side."""
        if not self.up:
            self.dropped += 1
            return
        if self._queued[sender.id] >= self.queue_packets:
            self.dropped += 1
            return
        receiver, in_port = self.peer_of(sender)
        serialization = self._serialization_ms(packet)
        now = self.simulator.now
        start = max(now, self._busy_until[sender.id])
        done = start + serialization
        self._busy_until[sender.id] = done
        self._queued[sender.id] += 1
        arrival_delay = (done + self.delay_ms) - now
        self.tx_packets += 1
        self.tx_bytes += packet.size_bytes
        self.simulator.schedule(arrival_delay, self._deliver, sender.id,
                                receiver, packet, in_port)

    def _deliver(self, sender_id: str, receiver: "NetworkNode",
                 packet: Packet, in_port: str) -> None:
        self._queued[sender_id] -= 1
        receiver.receive(packet, in_port)

    def _serialization_ms(self, packet: Packet) -> float:
        if self.bandwidth_mbps <= 0:
            return 0.0
        bits = packet.size_bytes * 8
        return bits / (self.bandwidth_mbps * 1000.0)  # Mbit/s -> bits/ms

    def utilization_bytes(self) -> int:
        return self.tx_bytes

    def __repr__(self) -> str:
        return (f"<Link {self.node_a.id}.{self.port_a} <-> "
                f"{self.node_b.id}.{self.port_b} {self.bandwidth_mbps}Mbps "
                f"{self.delay_ms}ms>")


from repro.netem.node import NetworkNode  # noqa: E402  (circular typing)
