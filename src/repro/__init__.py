"""repro — reproduction of "Multi-Domain Service Orchestration Over
Networks and Clouds: A Unified Approach" (Sonkoly et al., SIGCOMM 2015).

The package implements the UNIFY joint SFC control plane:

- ``repro.nffg`` — the joint compute+network resource abstraction
  (NF Forwarding Graph with BiS-BiS infrastructure nodes);
- ``repro.virtualizer`` — YANG-modelled virtual views exchanged over the
  recursive Unify interface;
- ``repro.mapping`` — pluggable embedding algorithms and NF
  decomposition;
- ``repro.orchestration`` — the ESCAPEv2-style layered orchestrator
  (service layer, resource orchestration layer, controller adaptation
  layer) with recursive north/south Unify interfaces;
- substrate simulations of every technology domain the paper's prototype
  integrates: a Mininet-like emulated domain with Click-style NFs
  (``repro.emu``, ``repro.click``), a legacy OpenFlow network with a
  POX-like controller (``repro.sdnnet``), an OpenStack+OpenDaylight-like
  data center (``repro.cloud``) and the Universal Node (``repro.un``),
  glued together by NETCONF-like (``repro.netconf``) and OpenFlow-like
  (``repro.openflow``) control channels over a discrete-event simulator
  (``repro.sim``) and a packet-level network model (``repro.netem``).
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
