"""The service layer.

"On top of ESCAPEv2, we have implemented a simple service layer with
GUI where users can define service requests with their requirements,
e.g., bandwidth or delay constraints between arbitrary elements in the
service graph."  The GUI is presentation only; this package provides
its programmatic equivalent: a request builder, SLA constraints, and a
:class:`ServiceLayer` that owns the request lifecycle on top of an
orchestrator.
"""

from repro.service.request import (
    ServiceRequest,
    ServiceRequestBuilder,
    ServiceState,
)
from repro.service.layer import ServiceLayer

__all__ = [
    "ServiceRequest",
    "ServiceRequestBuilder",
    "ServiceState",
    "ServiceLayer",
]
