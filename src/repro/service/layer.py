"""The service layer's orchestration side.

Contains the *service orchestrator* of the paper: requests are mapped
onto the view the lower layer exposes.  When the view is a single
BiS-BiS the task is trivial (the paper's delegation case) — the
service layer just forwards the graph; against richer views it can run
its own embedder before delegating.
"""

from __future__ import annotations

from typing import Optional

from repro.nffg.graph import NFFG
from repro.orchestration.escape import EscapeOrchestrator
from repro.orchestration.report import DeployReport
from repro.service.request import ServiceRequest, ServiceState


class ServiceLayer:
    """Request lifecycle management on top of an orchestrator."""

    def __init__(self, orchestrator: EscapeOrchestrator,
                 name: str = "service-layer"):
        self.name = name
        self.orchestrator = orchestrator
        self.requests: dict[str, ServiceRequest] = {}

    # -- lifecycle ----------------------------------------------------------

    def submit(self, request: ServiceRequest) -> DeployReport:
        """Validate, store and deploy a request."""
        if request.id in self.requests and \
                self.requests[request.id].state == ServiceState.DEPLOYED:
            report = DeployReport(service_id=request.id, success=False,
                                  error="already deployed")
            return report
        self.requests[request.id] = request
        problems = request.sg.validate()
        if problems:
            request.state = ServiceState.FAILED
            request.error = "; ".join(problems)
            return DeployReport(service_id=request.id, success=False,
                                error=request.error)
        report = self.orchestrator.deploy(request.sg)
        if report.success:
            request.state = ServiceState.DEPLOYED
        else:
            request.state = ServiceState.FAILED
            request.error = report.error
        return report

    def terminate(self, request_id: str) -> bool:
        request = self.requests.get(request_id)
        if request is None or request.state != ServiceState.DEPLOYED:
            return False
        if self.orchestrator.teardown(request_id):
            request.state = ServiceState.TERMINATED
            return True
        return False

    def status(self, request_id: str) -> Optional[ServiceState]:
        request = self.requests.get(request_id)
        return request.state if request is not None else None

    def list_requests(self) -> list[ServiceRequest]:
        return list(self.requests.values())

    def active_requests(self) -> list[ServiceRequest]:
        return [request for request in self.requests.values()
                if request.state == ServiceState.DEPLOYED]

    # -- introspection -----------------------------------------------------------

    def topology_view(self) -> NFFG:
        """The virtual view this layer plans against."""
        return self.orchestrator.resource_view()

    def __repr__(self) -> str:
        deployed = len(self.active_requests())
        return (f"<ServiceLayer {self.name}: {len(self.requests)} requests, "
                f"{deployed} deployed>")
