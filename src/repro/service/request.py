"""Service requests: what a user asks for.

A :class:`ServiceRequest` wraps a service-graph NFFG with lifecycle
state and SLA metadata.  :class:`ServiceRequestBuilder` is the
programmatic stand-in for the demo GUI: chains, branches, flowclass
filters, bandwidth and delay constraints "between arbitrary elements".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.click.catalog import NF_CATALOG
from repro.nffg.builder import NFFGBuilder
from repro.nffg.graph import NFFG


class ServiceState(str, enum.Enum):
    REQUESTED = "requested"
    MAPPED = "mapped"
    DEPLOYED = "deployed"
    FAILED = "failed"
    TERMINATED = "terminated"


@dataclass
class ServiceRequest:
    id: str
    sg: NFFG
    state: ServiceState = ServiceState.REQUESTED
    error: str = ""
    metadata: dict[str, Any] = field(default_factory=dict)

    def sla_summary(self) -> dict[str, Any]:
        return {
            "chains": len(self.sg.sg_hops),
            "nfs": [nf.functional_type for nf in self.sg.nfs],
            "delay_constraints": [
                {"from": req.src_node, "to": req.dst_node,
                 "max_delay_ms": req.max_delay}
                for req in self.sg.requirements
                if req.max_delay != float("inf")],
            "bandwidth_demands": sorted(
                {hop.bandwidth for hop in self.sg.sg_hops if hop.bandwidth}),
        }


class ServiceRequestBuilder:
    """Fluent request construction (the GUI's drawing surface as code).

    >>> req = (ServiceRequestBuilder("demo")
    ...        .sap("sap1").sap("sap2")
    ...        .nf("fw", "firewall")
    ...        .chain("sap1", "fw", "sap2", bandwidth=10.0)
    ...        .delay_requirement("sap1", "sap2", max_delay=50.0)
    ...        .build())
    >>> req.state
    <ServiceState.REQUESTED: 'requested'>
    """

    def __init__(self, request_id: str):
        self.request_id = request_id
        self._builder = NFFGBuilder(request_id)
        self._metadata: dict[str, Any] = {}

    def sap(self, sap_id: str, name: str = "") -> "ServiceRequestBuilder":
        self._builder.sap(sap_id, name=name)
        return self

    def nf(self, nf_id: str, functional_type: str, *,
           cpu: Optional[float] = None, mem: Optional[float] = None,
           storage: Optional[float] = None,
           num_ports: int = 2,
           domain: Optional[str] = None,
           pin_to: Optional[str] = None,
           not_with: Optional[list[str]] = None) -> "ServiceRequestBuilder":
        """Add an NF; resource defaults come from the NF catalog.

        Placement constraints: ``domain`` restricts the NF to a
        technology domain (a :class:`~repro.nffg.model.DomainType`
        value), ``pin_to`` to one specific infra node, ``not_with``
        forbids co-location with the listed NFs of this service.
        """
        impl = NF_CATALOG.get(functional_type)
        defaults = impl.default_resources if impl is not None else None
        self._builder.nf(
            nf_id, functional_type,
            cpu=cpu if cpu is not None else (defaults.cpu if defaults else 1.0),
            mem=mem if mem is not None else (defaults.mem if defaults else 128.0),
            storage=storage if storage is not None
            else (defaults.storage if defaults else 1.0),
            num_ports=num_ports)
        node = self._builder._nffg.nf(nf_id)
        if domain is not None:
            node.metadata["constraint:domain"] = str(domain)
        if pin_to is not None:
            node.metadata["constraint:infra"] = pin_to
        if not_with:
            node.metadata["constraint:anti_affinity"] = list(not_with)
        return self

    def chain(self, *node_ids: str, flowclass: str = "",
              bandwidth: float = 0.0) -> "ServiceRequestBuilder":
        self._builder.chain(*node_ids, flowclass=flowclass,
                            bandwidth=bandwidth)
        return self

    def hop(self, src: str, dst: str, *, flowclass: str = "",
            bandwidth: float = 0.0, delay: float = 0.0,
            src_port: Optional[str] = None,
            dst_port: Optional[str] = None) -> "ServiceRequestBuilder":
        self._builder.hop(src, dst, flowclass=flowclass, bandwidth=bandwidth,
                          delay=delay, src_port=src_port, dst_port=dst_port)
        return self

    def delay_requirement(self, src: str, dst: str, *,
                          max_delay: float) -> "ServiceRequestBuilder":
        self._builder.requirement(src, dst, max_delay=max_delay)
        return self

    def bandwidth_requirement(self, src: str, dst: str, *,
                              bandwidth: float) -> "ServiceRequestBuilder":
        self._builder.requirement(src, dst, bandwidth=bandwidth)
        return self

    def meta(self, key: str, value: Any) -> "ServiceRequestBuilder":
        self._metadata[key] = value
        return self

    def build(self) -> ServiceRequest:
        sg = self._builder.build()
        request = ServiceRequest(id=self.request_id, sg=sg)
        request.metadata.update(self._metadata)
        return request
