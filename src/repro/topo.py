"""Reference testbeds.

:func:`build_reference_multidomain` reproduces the proof-of-concept
infrastructure of Fig. 1: a Mininet-like emulated domain, a legacy
OpenFlow network under POX, an OpenStack+ODL data center and a
Universal Node — all on one packet simulator, stitched by inter-domain
links, and orchestrated by a single ESCAPEv2 instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cloud.domain import CloudDomain
from repro.emu.domain import EmulatedDomain
from repro.mapping.base import Embedder
from repro.mapping.decomposition import (
    DecompositionLibrary,
    default_decomposition_library,
)
from repro.netem.network import Network
from repro.netem.node import Host
from repro.orchestration.adapters import (
    CloudDomainAdapter,
    EmuDomainAdapter,
    SdnDomainAdapter,
    UNDomainAdapter,
)
from repro.orchestration.escape import EscapeOrchestrator
from repro.sdnnet.domain import SDNDomain
from repro.service.layer import ServiceLayer
from repro.un.domain import UniversalNodeDomain


@dataclass
class MultiDomainTestbed:
    """Everything the Fig. 1 proof of concept consists of."""

    network: Network
    escape: EscapeOrchestrator
    service_layer: ServiceLayer
    emu: EmulatedDomain
    sdn: SDNDomain
    cloud: CloudDomain
    un: UniversalNodeDomain
    sap_hosts: dict[str, Host] = field(default_factory=dict)

    def run(self, until: Optional[float] = None) -> None:
        self.network.run(until=until)

    def host(self, sap_id: str) -> Host:
        return self.sap_hosts[sap_id]


def _wire_handoff(network: Network, tag: str,
                  side_a: tuple[str, str], side_b: tuple[str, str], *,
                  bandwidth: float = 10_000.0, delay: float = 1.0) -> None:
    """Physically connect two domains' hand-off ports."""
    (node_a, port_a), (node_b, port_b) = side_a, side_b
    network.connect(node_a, port_a, node_b, port_b,
                    bandwidth_mbps=bandwidth, delay_ms=delay)


def build_reference_multidomain(
        *, embedder: Optional[Embedder] = None,
        decomposition_library: Optional[DecompositionLibrary] = None,
        use_default_decompositions: bool = True,
        emu_switches: int = 2, sdn_switches: int = 2,
        cloud_leaves: int = 2, cloud_hosts_per_leaf: int = 2,
        vm_boot_delay_ms: float = 1500.0,
        container_start_delay_ms: float = 300.0) -> MultiDomainTestbed:
    """Build the Fig. 1 stack.

    SAP placement: ``sap1`` in the emulated domain, ``sap2`` on the
    Universal Node, ``sap3`` in the cloud — so a sap1->sap2 chain must
    traverse the legacy SDN network and can place NFs in any of the
    three NF-capable domains.
    """
    network = Network()

    emu = EmulatedDomain(
        "emu", network,
        node_ids=[f"emu-bb{i}" for i in range(emu_switches)],
        links=[(f"emu-bb{i}", f"emu-bb{i + 1}")
               for i in range(emu_switches - 1)])
    emu.add_sap("sap1", "emu-bb0")

    sdn = SDNDomain(
        "sdn", network,
        switch_ids=[f"sdn-sw{i}" for i in range(sdn_switches)],
        links=[(f"sdn-sw{i}", f"sdn-sw{i + 1}")
               for i in range(sdn_switches - 1)])

    cloud = CloudDomain("cloud", network, num_leaves=cloud_leaves,
                        hosts_per_leaf=cloud_hosts_per_leaf,
                        vm_boot_delay_ms=vm_boot_delay_ms)
    cloud.add_sap("sap3", leaf_index=min(1, cloud_leaves - 1))

    un = UniversalNodeDomain(
        "un", network, container_start_delay_ms=container_start_delay_ms)
    un.add_sap("sap2")

    # inter-domain hand-offs (Fig. 1: the SDN network is the transit core)
    last_emu = f"emu-bb{emu_switches - 1}"
    first_sdn, last_sdn = "sdn-sw0", f"sdn-sw{sdn_switches - 1}"
    _wire_handoff(network, "emu-sdn",
                  emu.add_handoff("emu-sdn", last_emu),
                  sdn.add_handoff("emu-sdn", first_sdn))
    _wire_handoff(network, "sdn-cloud",
                  sdn.add_handoff("sdn-cloud", last_sdn),
                  cloud.add_handoff("sdn-cloud", leaf_index=0))
    _wire_handoff(network, "sdn-un",
                  sdn.add_handoff("sdn-un", last_sdn),
                  un.add_handoff("sdn-un"))

    library = decomposition_library
    if library is None and use_default_decompositions:
        library = default_decomposition_library()
    escape = EscapeOrchestrator("escape", embedder=embedder,
                                decomposition_library=library,
                                simulator=network.simulator)
    escape.add_domain(EmuDomainAdapter("emu", emu))
    escape.add_domain(SdnDomainAdapter("sdn", sdn))
    escape.add_domain(CloudDomainAdapter("cloud", cloud))
    escape.add_domain(UNDomainAdapter("un", un))

    service_layer = ServiceLayer(escape)
    sap_hosts = dict(emu.sap_hosts)
    sap_hosts.update(cloud.sap_hosts)
    sap_hosts.update(un.sap_hosts)
    return MultiDomainTestbed(network=network, escape=escape,
                              service_layer=service_layer, emu=emu, sdn=sdn,
                              cloud=cloud, un=un, sap_hosts=sap_hosts)


def build_emulated_testbed(*, switches: int = 3,
                           embedder: Optional[Embedder] = None) -> MultiDomainTestbed:
    """A single-domain testbed (emu only) for focused tests."""
    network = Network()
    emu = EmulatedDomain(
        "emu", network,
        node_ids=[f"emu-bb{i}" for i in range(switches)],
        links=[(f"emu-bb{i}", f"emu-bb{i + 1}")
               for i in range(switches - 1)])
    emu.add_sap("sap1", "emu-bb0")
    emu.add_sap("sap2", f"emu-bb{switches - 1}")
    escape = EscapeOrchestrator("escape-emu", embedder=embedder,
                                simulator=network.simulator)
    escape.add_domain(EmuDomainAdapter("emu", emu))
    layer = ServiceLayer(escape)
    return MultiDomainTestbed(
        network=network, escape=escape, service_layer=layer, emu=emu,
        sdn=None, cloud=None, un=None,  # type: ignore[arg-type]
        sap_hosts=dict(emu.sap_hosts))
